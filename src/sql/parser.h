// Recursive-descent parser for the with+ dialect.
//
// Grammar sketch (keywords case-insensitive):
//
//   with_stmt  := WITH [RECURSIVE] ident ['(' ident,* ')'] AS '(' body ')'
//                 [select_core] [';']
//   body       := subquery (combinator subquery)* [MAXRECURSION number]
//   combinator := UNION ALL | UNION BY UPDATE [ident,*] | UNION
//   subquery   := ['('] select_core [COMPUTED BY def+] [')']
//   def        := ident ['(' ident,* ')'] AS select_core ';'
//   select_core:= SELECT [DISTINCT] item,* FROM tableref,*
//                 [WHERE expr] [GROUP BY column,*]
//   item       := expr [AS ident] | '*'
//   tableref   := ident [AS? ident]
//   expr       := or-expr with the usual precedence; supports
//                 [NOT] IN (select …) | [NOT] IN select …, IS [NOT] NULL,
//                 arithmetic, comparisons, function calls, count(*)
#pragma once

#include "sql/ast.h"
#include "util/status.h"

namespace gpr::sql {

/// Parses a full with+ statement.
Result<WithStatementAst> ParseWithStatement(const std::string& text);

/// Parses a bare select statement.
Result<SelectCore> ParseSelect(const std::string& text);

}  // namespace gpr::sql
