#include "util/diag_emit.h"

namespace gpr {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

std::string JsonArrayEmitter::Render() const {
  if (entries_.empty()) return "[]\n";
  std::string out = "[\n";
  for (size_t i = 0; i < entries_.size(); ++i) {
    out += "  ";
    out += entries_[i];
    out += i + 1 < entries_.size() ? ",\n" : "\n";
  }
  out += "]\n";
  return out;
}

void JsonArrayEmitter::Print(std::FILE* out) const {
  const std::string rendered = Render();
  std::fwrite(rendered.data(), 1, rendered.size(), out);
}

bool JsonArrayEmitter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string rendered = Render();
  const bool ok =
      std::fwrite(rendered.data(), 1, rendered.size(), f) == rendered.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace gpr
