// Shared diagnostic-emitting helpers for the offline checking tools.
//
// Both batch analyzers — `gpr_lint` (examples/gpr_lint.cpp, with+ SQL
// statements) and `gpr_check` (tools/gpr_check, repo-invariant linter over
// the C++ sources) — print human-readable findings and additionally emit a
// machine-readable JSON-array artifact for CI (ANALYSIS_facts.json /
// ANALYSIS_check.json). The escaping and array plumbing used to be
// duplicated; this header is the single implementation.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace gpr {

/// Escapes `s` for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s);

/// Collects pre-rendered JSON values and emits them as a pretty-printed
/// JSON array — one value per line, two-space indent, trailing newline —
/// the shape CI artifact consumers diff across commits.
class JsonArrayEmitter {
 public:
  void Add(std::string entry) { entries_.push_back(std::move(entry)); }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  /// "[]\n" when empty, otherwise "[\n  e1,\n  e2\n]\n".
  std::string Render() const;

  void Print(std::FILE* out) const;

  /// Writes Render() to `path`; false on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> entries_;
};

}  // namespace gpr
