// Minimal logging and invariant-checking macros.
//
// CHECK-style macros abort on violation; they guard internal invariants, not
// user input (user input errors flow through Status).
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace gpr {
namespace internal {

/// Accumulates a message and aborts the process on destruction.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line) {
    stream_ << "FATAL " << file << ":" << line << " ";
  }
  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Severity-tagged message flushed to stderr on destruction.
class LogMessage {
 public:
  LogMessage(const char* level, const char* file, int line) {
    stream_ << level << " " << file << ":" << line << " ";
  }
  ~LogMessage() { std::cerr << stream_.str() << std::endl; }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gpr

#define GPR_CHECK(cond)                                          \
  if (!(cond))                                                   \
  ::gpr::internal::FatalLogMessage(__FILE__, __LINE__).stream()  \
      << "Check failed: " #cond " "

#define GPR_CHECK_EQ(a, b) GPR_CHECK((a) == (b))
#define GPR_CHECK_NE(a, b) GPR_CHECK((a) != (b))
#define GPR_CHECK_LT(a, b) GPR_CHECK((a) < (b))
#define GPR_CHECK_LE(a, b) GPR_CHECK((a) <= (b))
#define GPR_CHECK_GT(a, b) GPR_CHECK((a) > (b))
#define GPR_CHECK_GE(a, b) GPR_CHECK((a) >= (b))

#define GPR_CHECK_OK(expr)                                        \
  do {                                                            \
    ::gpr::Status _st = (expr);                                   \
    GPR_CHECK(_st.ok()) << _st.ToString();                        \
  } while (0)

#define GPR_LOG_WARN() \
  ::gpr::internal::LogMessage("WARN", __FILE__, __LINE__).stream()
#define GPR_LOG_INFO() \
  ::gpr::internal::LogMessage("INFO", __FILE__, __LINE__).stream()

#define GPR_UNREACHABLE()                                           \
  do {                                                              \
    ::gpr::internal::FatalLogMessage(__FILE__, __LINE__).stream()   \
        << "Unreachable code reached";                              \
    __builtin_unreachable();                                        \
  } while (0)
