// Annotated mutex / condition-variable wrappers: std::mutex and
// std::condition_variable with the Clang thread-safety capability attached
// (util/thread_annotations.h).
//
// Engine code uses these instead of the raw std types so that
//
//   * GPR_GUARDED_BY(mu_) member annotations are enforceable — the
//     analysis needs the mutex type itself to carry the capability
//     attribute, which std::mutex does not;
//   * lock discipline is uniform and lintable: gpr_check rule GPR-C402
//     flags any raw std::mutex / std::lock_guard / std::condition_variable
//     in src/ outside this header.
//
// The wrappers are zero-cost: every method is a single inlined forward to
// the std type. No timed, shared, or recursive variants are offered — the
// engine has never needed them, and a smaller surface keeps the analysis
// complete.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace gpr {

class CondVar;

/// A std::mutex carrying the thread-safety capability. Non-reentrant.
class GPR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GPR_ACQUIRE() { mu_.lock(); }
  void Unlock() GPR_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a gpr::Mutex — the only sanctioned way to lock one.
class GPR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GPR_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() GPR_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with gpr::Mutex. Waits are spelled as explicit
/// predicate loops at the call site —
///
///   gpr::MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
///
/// — rather than taking a predicate lambda, so every guarded read stays
/// lexically inside the locked region where the analysis can see it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; re-acquires before returning.
  /// Spurious wakeups happen — always wait in a predicate loop.
  void Wait(Mutex& mu) GPR_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock keeps ownership
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gpr
