// Deterministic pseudo-random number generation.
//
// Benchmarks and synthetic dataset generators must be reproducible across
// runs, so all randomness flows through explicitly seeded generators.
#pragma once

#include <cstdint>
#include <limits>

namespace gpr {

/// SplitMix64: tiny, fast generator used for seeding and light-duty draws.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound).
  uint64_t NextBounded(uint64_t bound) { return bound ? Next() % bound : 0; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  uint64_t state_;
};

/// Xoshiro256**: the workhorse generator for dataset synthesis.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  uint64_t NextBounded(uint64_t bound) { return bound ? Next() % bound : 0; }

  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

}  // namespace gpr
