#include "util/status.h"

namespace gpr {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kNotStratifiable:
      return "NotStratifiable";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kLimitExceeded:
      return "LimitExceeded";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  if (detail_ != nullptr) {
    out += " [";
    out += detail_->ToString();
    out += "]";
  }
  return out;
}

}  // namespace gpr
