// Status / Result error-handling primitives, in the style of Arrow/RocksDB.
//
// Library code returns Status (or Result<T>) rather than throwing; internal
// invariant violations use the CHECK macros in logging.h.
#pragma once

#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace gpr {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kTypeMismatch,
  kNotStratifiable,   ///< with+ plan failed the XY-stratification check
  kNotSupported,      ///< feature disabled under the active engine profile
  kParseError,        ///< SQL text could not be parsed
  kBindError,         ///< SQL AST could not be bound to catalog objects
  kExecutionError,    ///< runtime failure inside an operator
  kLimitExceeded,     ///< e.g. maxrecursion reached without convergence
  kIoError,
  kInternal,
  kDeadlineExceeded,  ///< execution governor: wall-clock deadline passed
  kResourceExhausted, ///< execution governor: row/byte/iteration budget spent
  kCancelled,         ///< execution governor: cooperative cancellation
  kUnavailable,       ///< transient failure; safe to retry (exec/retry.h)
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Optional machine-readable payload attached to a Status — e.g. the
/// execution governor's partial-progress record (gpr::exec::ProgressDetail).
/// Consumers match on type_id() and downcast.
class StatusDetail {
 public:
  virtual ~StatusDetail() = default;
  virtual const char* type_id() const = 0;
  virtual std::string ToString() const = 0;
};

/// A success-or-error outcome carrying a code and a message. Marked
/// [[nodiscard]] class-wide: silently dropping a Status hides failures —
/// callers must check it, propagate it, or discard it explicitly with
/// a (void) cast.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status NotStratifiable(std::string msg) {
    return Status(StatusCode::kNotStratifiable, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status LimitExceeded(std::string msg) {
    return Status(StatusCode::kLimitExceeded, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Attaches a machine-readable payload (kept through copies/propagation).
  Status& SetDetail(std::shared_ptr<const StatusDetail> detail) {
    detail_ = std::move(detail);
    return *this;
  }
  Status WithDetail(std::shared_ptr<const StatusDetail> detail) && {
    detail_ = std::move(detail);
    return std::move(*this);
  }
  const std::shared_ptr<const StatusDetail>& detail() const {
    return detail_;
  }

  /// "OK" or "<CodeName>: <message>", with " [<detail>]" appended when a
  /// detail payload is attached.
  std::string ToString() const;

  /// Equality compares code and message only; detail payloads are
  /// diagnostic and deliberately ignored.
  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
  std::shared_ptr<const StatusDetail> detail_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : value_(std::move(status)) {
    // A Result must never hold an OK status without a value.
    if (std::get<Status>(value_).ok()) {
      value_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(value_);
  }

  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` on error.
  T ValueOr(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> value_;
};

}  // namespace gpr

/// Propagate a non-OK Status to the caller.
#define GPR_RETURN_NOT_OK(expr)                  \
  do {                                           \
    ::gpr::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluate a Result expression; on error propagate, else bind the value.
#define GPR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define GPR_CONCAT_(a, b) a##b
#define GPR_CONCAT(a, b) GPR_CONCAT_(a, b)

#define GPR_ASSIGN_OR_RETURN(lhs, expr) \
  GPR_ASSIGN_OR_RETURN_IMPL(GPR_CONCAT(_gpr_result_, __LINE__), lhs, expr)
