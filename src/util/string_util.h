// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gpr {

/// Lower-cases ASCII characters (SQL keywords are case-insensitive).
std::string ToLower(std::string_view s);

/// Upper-cases ASCII characters.
std::string ToUpper(std::string_view s);

/// Splits on a delimiter character; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char delim);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins parts with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True if `s` begins with `prefix` (case-sensitive).
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace gpr
