// Clang Thread Safety Analysis annotations (GPR_ prefix), no-ops on every
// other compiler.
//
// The engine's concurrency invariants — which mutex guards which member,
// which functions must (or must not) be called with a lock held — are
// machine-checked at compile time instead of being enforced by convention
// and caught by TSan after the fact. Annotate with these macros and build
// with Clang and -Wthread-safety (the `clang-tsa` CMake preset, and the
// `static-analysis` CI job, promote the warning to an error); see
// docs/static-analysis.md for the catalog and the `gpr::Mutex` wrapper
// (util/mutex.h) that carries the capability.
//
// The macro set mirrors the official Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); only the
// spellings the codebase uses are defined.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define GPR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GPR_THREAD_ANNOTATION(x)  // no-op
#endif

/// Declares a type to be a capability ("mutex"); used on gpr::Mutex.
#define GPR_CAPABILITY(x) GPR_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor; used on gpr::MutexLock.
#define GPR_SCOPED_CAPABILITY GPR_THREAD_ANNOTATION(scoped_lockable)

/// The annotated member may only be read or written while holding `x`.
#define GPR_GUARDED_BY(x) GPR_THREAD_ANNOTATION(guarded_by(x))

/// The annotated pointer member may be dereferenced only while holding `x`
/// (the pointer itself is unrestricted).
#define GPR_PT_GUARDED_BY(x) GPR_THREAD_ANNOTATION(pt_guarded_by(x))

/// The caller must hold the listed capabilities exclusively before calling.
#define GPR_REQUIRES(...) \
  GPR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and does not release them.
#define GPR_ACQUIRE(...) \
  GPR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (which must be held).
#define GPR_RELEASE(...) \
  GPR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities (deadlock prevention
/// for non-reentrant locks).
#define GPR_EXCLUDES(...) GPR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the listed capability.
#define GPR_RETURN_CAPABILITY(x) GPR_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code that is intentionally checked by other means
/// (e.g. publication ordering); always pair with a comment saying why.
#define GPR_NO_THREAD_SAFETY_ANALYSIS \
  GPR_THREAD_ANNOTATION(no_thread_safety_analysis)
