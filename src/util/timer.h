// Wall-clock timing helpers for the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace gpr {

/// A simple monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time since construction/Restart, in seconds.
  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gpr
