// Integration tests: every relational (with+) algorithm cross-checked
// against the native baseline implementations on fixed and random graphs.
#include <gtest/gtest.h>

#include <set>

#include "algos/algos.h"
#include "algos/registry.h"
#include "baseline/native_algos.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gpr {
namespace {

using algos::AlgoOptions;
using graph::Graph;
using gpr::testing::MakeCatalog;
using gpr::testing::MatrixOf;
using gpr::testing::TinyDag;
using gpr::testing::TinyGraph;
using gpr::testing::VectorOf;

/// Random graphs the parameterized integration tests sweep over.
struct GraphCase {
  const char* name;
  graph::NodeId n;
  size_t m;
  uint64_t seed;
};

class AlgoVsBaseline : public ::testing::TestWithParam<GraphCase> {
 protected:
  Graph MakeGraph() const {
    const auto& p = GetParam();
    Graph g = graph::Rmat(p.n, p.m, p.seed);
    graph::AttachRandomNodeData(&g, p.seed ^ 0x1234);
    return g;
  }
};

TEST_P(AlgoVsBaseline, BfsMatchesNative) {
  Graph g = MakeGraph();
  auto catalog = MakeCatalog(g);
  AlgoOptions opt;
  opt.source = 0;
  auto result = algos::Bfs(catalog, opt);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  auto got = VectorOf(result->table);
  auto levels = baseline::Bfs(g, 0);
  ASSERT_EQ(got.size(), static_cast<size_t>(g.num_nodes()));
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const double expected = levels[v] >= 0 ? 1.0 : 0.0;
    EXPECT_EQ(got.at(v), expected) << "node " << v;
  }
}

TEST_P(AlgoVsBaseline, FrontierBfsMatchesMvJoinBfs) {
  Graph g = MakeGraph();
  auto catalog = MakeCatalog(g);
  AlgoOptions opt;
  opt.source = 0;
  auto frontier = algos::BfsFrontier(catalog, opt);
  ASSERT_TRUE(frontier.ok()) << frontier.status();
  EXPECT_TRUE(frontier->converged);
  auto levels = baseline::Bfs(g, 0);
  std::set<int64_t> reached;
  for (const auto& row : frontier->table.rows()) {
    reached.insert(row[0].ToInt64());
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(reached.count(v) > 0, levels[v] >= 0) << "node " << v;
  }
}

TEST_P(AlgoVsBaseline, WccMatchesNative) {
  Graph g = MakeGraph();
  auto catalog = MakeCatalog(g);
  auto result = algos::Wcc(catalog, {});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  auto got = VectorOf(result->table);
  auto labels = baseline::Wcc(g);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(got.at(v), static_cast<double>(labels[v])) << "node " << v;
  }
}

TEST_P(AlgoVsBaseline, SsspMatchesNative) {
  Graph g = graph::WithRandomEdgeWeights(MakeGraph(), 7, 1.0, 5.0);
  auto catalog = MakeCatalog(g);
  AlgoOptions opt;
  opt.source = 0;
  auto result = algos::SsspBellmanFord(catalog, opt);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  auto got = VectorOf(result->table);
  auto dist = baseline::SsspBellmanFord(g, 0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(got.at(v), dist[v], 1e-9) << "node " << v;
  }
}

TEST_P(AlgoVsBaseline, PageRankMatchesPaperSemantics) {
  Graph g = MakeGraph();
  auto catalog = MakeCatalog(g);
  AlgoOptions opt;
  opt.max_iterations = 7;
  auto result = algos::PageRank(catalog, opt);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->iterations, 7u);

  // Mirror: normalized edge weights 1/outdeg.
  std::vector<graph::Edge> edges = g.EdgeList();
  for (auto& e : edges) {
    e.weight = 1.0 / static_cast<double>(g.OutDegree(e.from));
  }
  Graph norm(g.num_nodes(), std::move(edges));
  auto expected = baseline::PaperPageRank(norm, 7, opt.damping);
  auto got = VectorOf(result->table);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(got.at(v), expected[v], 1e-9) << "node " << v;
  }
}

TEST_P(AlgoVsBaseline, HitsMatchesPaperSemantics) {
  Graph g = MakeGraph();
  auto catalog = MakeCatalog(g);
  AlgoOptions opt;
  opt.max_iterations = 6;
  auto result = algos::Hits(catalog, opt);
  ASSERT_TRUE(result.ok()) << result.status();
  auto expected = baseline::PaperHits(g, 6);
  ASSERT_EQ(result->table.schema().NumColumns(), 3u);
  for (const auto& row : result->table.rows()) {
    const auto v = row[0].ToInt64();
    EXPECT_NEAR(row[1].ToDouble(), expected.hub[v], 1e-9) << "hub " << v;
    EXPECT_NEAR(row[2].ToDouble(), expected.auth[v], 1e-9) << "auth " << v;
  }
}

TEST_P(AlgoVsBaseline, LabelPropagationMatchesNative) {
  Graph g = MakeGraph();
  auto catalog = MakeCatalog(g);
  AlgoOptions opt;
  opt.max_iterations = 5;
  auto result = algos::LabelPropagation(catalog, opt);
  ASSERT_TRUE(result.ok()) << result.status();
  auto expected = baseline::LabelPropagation(g, 5);
  auto got = VectorOf(result->table);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(static_cast<int64_t>(got.at(v)), expected[v]) << "node " << v;
  }
}

TEST_P(AlgoVsBaseline, KCoreMatchesNative) {
  Graph g = MakeGraph();
  auto catalog = MakeCatalog(g);
  AlgoOptions opt;
  opt.k = 3;
  auto result = algos::KCore(catalog, opt);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  auto core_flags = baseline::KCore(g, 3);
  // The relational result is the k-core edge set; its endpoints must be
  // exactly the native k-core membership restricted to non-isolated nodes.
  std::vector<bool> got(g.num_nodes(), false);
  for (const auto& row : result->table.rows()) {
    got[row[0].ToInt64()] = true;
    got[row[1].ToInt64()] = true;
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(got[v], core_flags[v]) << "node " << v;
  }
}

TEST_P(AlgoVsBaseline, MnmMatchesNative) {
  Graph g = MakeGraph();
  auto catalog = MakeCatalog(g);
  auto result = algos::MaximalNodeMatching(catalog, {});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  auto expected = baseline::Mnm(g);
  auto got = VectorOf(result->table);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(static_cast<int64_t>(got.at(v)), expected[v]) << "node " << v;
  }
}

TEST_P(AlgoVsBaseline, KeywordSearchMatchesNative) {
  Graph g = MakeGraph();
  auto catalog = MakeCatalog(g);
  AlgoOptions opt;
  opt.keywords = {1, 2, 3};
  opt.depth = 4;
  auto result = algos::KeywordSearch(catalog, opt);
  ASSERT_TRUE(result.ok()) << result.status();
  auto expected = baseline::KeywordSearchRoots(g, opt.keywords, opt.depth);
  std::vector<bool> got(g.num_nodes(), false);
  for (const auto& row : result->table.rows()) {
    bool all = true;
    for (size_t c = 1; c < row.size(); ++c) all &= row[c].ToInt64() == 1;
    got[row[0].ToInt64()] = all;
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(got[v], expected[v]) << "node " << v;
  }
}

TEST_P(AlgoVsBaseline, MisIsIndependentAndMaximal) {
  Graph g = MakeGraph();
  auto catalog = MakeCatalog(g);
  auto result = algos::MaximalIndependentSet(catalog, {});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  std::vector<bool> in_set(g.num_nodes(), false);
  for (const auto& row : result->table.rows()) {
    ASSERT_NE(row[1].ToInt64(), 0) << "node left undecided";
    if (row[1].ToInt64() == 1) in_set[row[0].ToInt64()] = true;
  }
  // Independence: no edge inside the set.
  for (const auto& e : g.EdgeList()) {
    EXPECT_FALSE(in_set[e.from] && in_set[e.to])
        << "edge " << e.from << "->" << e.to << " inside the MIS";
  }
  // Maximality: every node outside has a neighbour inside.
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in_set[v]) continue;
    bool covered = false;
    for (graph::NodeId w : g.OutNeighbors(v)) covered |= in_set[w];
    for (graph::NodeId w : g.InNeighbors(v)) covered |= in_set[w];
    EXPECT_TRUE(covered) << "node " << v << " could join the MIS";
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, AlgoVsBaseline,
    ::testing::Values(GraphCase{"small", 30, 80, 1},
                      GraphCase{"medium", 120, 500, 2},
                      GraphCase{"sparse", 200, 300, 3},
                      GraphCase{"dense", 60, 900, 4}),
    [](const ::testing::TestParamInfo<GraphCase>& info) {
      return info.param.name;
    });

TEST(AlgosFixed, TransitiveClosureTinyGraph) {
  Graph g = TinyGraph();
  auto catalog = MakeCatalog(g);
  algos::AlgoOptions opt;
  opt.depth = 0;  // run to fixpoint
  auto result = algos::TransitiveClosure(catalog, opt);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  auto expected = baseline::TransitiveClosure(g);
  EXPECT_EQ(result->table.NumRows(), expected.size());
}

TEST(AlgosFixed, TopoSortTinyDag) {
  Graph g = TinyDag();
  auto catalog = MakeCatalog(g);
  auto result = algos::TopoSort(catalog, {});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  auto expected = baseline::TopoSortLevels(g);
  auto got = VectorOf(result->table);
  ASSERT_EQ(got.size(), static_cast<size_t>(g.num_nodes()));
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(static_cast<int64_t>(got.at(v)), expected[v]) << "node " << v;
  }
}

TEST(AlgosFixed, TopoSortOnRandomDags) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = graph::RandomDag(80, 200, seed);
    auto catalog = MakeCatalog(g);
    auto result = algos::TopoSort(catalog, {});
    ASSERT_TRUE(result.ok()) << result.status();
    auto expected = baseline::TopoSortLevels(g);
    ASSERT_FALSE(expected.empty());
    auto got = VectorOf(result->table);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(static_cast<int64_t>(got.at(v)), expected[v])
          << "seed " << seed << " node " << v;
    }
  }
}

TEST(AlgosFixed, TopoSortLeavesCycleNodesUnsorted) {
  Graph g = TinyGraph();  // contains cycle 1→2→3→1
  auto catalog = MakeCatalog(g);
  auto result = algos::TopoSort(catalog, {});
  ASSERT_TRUE(result.ok()) << result.status();
  auto got = VectorOf(result->table);
  EXPECT_TRUE(got.count(0));
  EXPECT_TRUE(got.count(4));
  EXPECT_TRUE(got.count(5));
  EXPECT_FALSE(got.count(1));
  EXPECT_FALSE(got.count(2));
  EXPECT_FALSE(got.count(3));
}

TEST(AlgosFixed, ApspBothFormsMatchFloydWarshall) {
  Graph g = graph::WithRandomEdgeWeights(graph::Rmat(25, 70, 9), 10, 1.0,
                                         4.0);
  auto expected = baseline::ApspFloydWarshall(g);
  auto catalog = MakeCatalog(g);

  auto nonlinear = algos::ApspFloydWarshall(catalog, {});
  ASSERT_TRUE(nonlinear.ok()) << nonlinear.status();
  EXPECT_TRUE(nonlinear->converged);
  auto got = MatrixOf(nonlinear->table);
  for (const auto& [key, d] : got) {
    EXPECT_NEAR(d, expected[key.first][key.second], 1e-9)
        << key.first << "->" << key.second;
  }
  // Every finite pair must be present.
  for (graph::NodeId i = 0; i < g.num_nodes(); ++i) {
    for (graph::NodeId j = 0; j < g.num_nodes(); ++j) {
      if (expected[i][j] < baseline::kUnreachable) {
        EXPECT_TRUE(got.count({i, j})) << i << "->" << j;
      }
    }
  }

  auto catalog2 = MakeCatalog(g);
  algos::AlgoOptions opt;
  opt.depth = 0;  // unbounded: run to fixpoint
  auto linear = algos::ApspLinear(catalog2, opt);
  ASSERT_TRUE(linear.ok()) << linear.status();
  EXPECT_TRUE(linear->converged);
  auto got2 = MatrixOf(linear->table);
  EXPECT_EQ(got.size(), got2.size());
  for (const auto& [key, d] : got2) {
    EXPECT_NEAR(d, expected[key.first][key.second], 1e-9);
  }
}

TEST(AlgosFixed, SimRankMatchesReference) {
  Graph g = graph::Rmat(12, 30, 5);
  auto catalog = MakeCatalog(g);
  algos::AlgoOptions opt;
  opt.max_iterations = 4;
  opt.simrank_c = 0.6;
  auto result = algos::SimRank(catalog, opt);
  ASSERT_TRUE(result.ok()) << result.status();

  // Reference over the in-normalized adjacency.
  std::vector<graph::Edge> edges = g.EdgeList();
  for (auto& e : edges) {
    e.weight = 1.0 / static_cast<double>(g.InDegree(e.to));
  }
  Graph norm(g.num_nodes(), std::move(edges));
  auto expected = baseline::PaperSimRank(norm, 4, opt.simrank_c);
  auto got = MatrixOf(result->table);
  for (const auto& [key, v] : got) {
    EXPECT_NEAR(v, expected[key.first][key.second], 1e-9)
        << key.first << "," << key.second;
  }
  // Entries the relational form dropped must be zero in the reference —
  // except the diagonal, which the max(..., I) keeps at 1.
  for (graph::NodeId i = 0; i < g.num_nodes(); ++i) {
    for (graph::NodeId j = 0; j < g.num_nodes(); ++j) {
      if (!got.count({i, j}) && i != j) {
        EXPECT_EQ(expected[i][j], 0.0) << i << "," << j;
      }
    }
  }
}

TEST(AlgosFixed, RwrConcentratesAroundSource) {
  Graph g = TinyGraph();
  auto catalog = MakeCatalog(g);
  algos::AlgoOptions opt;
  opt.source = 0;
  opt.max_iterations = 20;
  auto result = algos::RandomWalkWithRestart(catalog, opt);
  ASSERT_TRUE(result.ok()) << result.status();
  auto got = VectorOf(result->table);
  // Nodes unreachable from the source keep zero mass.
  EXPECT_EQ(got.at(4), 0.0);
  // Reachable nodes get positive mass.
  EXPECT_GT(got.at(1), 0.0);
  EXPECT_GT(got.at(2), 0.0);
  EXPECT_GT(got.at(3), 0.0);
}

TEST(AlgosFixed, DiameterEstimationIterationsBoundDiameter) {
  // A directed path 0→1→…→9: propagation needs exactly 9 hops + 1
  // convergence-detection round.
  std::vector<graph::Edge> edges;
  for (int i = 0; i < 9; ++i) edges.push_back({i, i + 1, 1.0});
  Graph g(10, std::move(edges));
  auto catalog = MakeCatalog(g);
  algos::AlgoOptions opt;
  opt.seed = 3;  // deterministic seed sample
  auto result = algos::DiameterEstimation(catalog, opt);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  EXPECT_LE(result->iterations, 11u);
  EXPECT_GE(result->iterations, 2u);
}

TEST(AlgosFixed, MarkovClusteringProducesStochasticMatrix) {
  Graph g = graph::Clustered(30, 120, 3, 11);
  auto catalog = MakeCatalog(g);
  algos::AlgoOptions opt;
  opt.max_iterations = 8;
  auto result = algos::MarkovClustering(catalog, opt);
  ASSERT_TRUE(result.ok()) << result.status();
  // Columns sum to ~1 (pruning trims a little mass).
  std::map<int64_t, double> colsum;
  for (const auto& row : result->table.rows()) {
    colsum[row[1].ToInt64()] += row[2].ToDouble();
  }
  for (const auto& [col, s] : colsum) {
    EXPECT_NEAR(s, 1.0, 0.05) << "column " << col;
  }
}

TEST(AlgosFixed, RegistryCoversEvaluationSet) {
  EXPECT_EQ(algos::EvaluationSet(false).size(), 9u);
  EXPECT_EQ(algos::EvaluationSet(true).size(), 10u);
  EXPECT_TRUE(algos::AlgoByAbbrev("pr").ok());
  EXPECT_FALSE(algos::AlgoByAbbrev("nope").ok());
}

}  // namespace
}  // namespace gpr
