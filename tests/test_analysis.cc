// Tests for the static plan analyzer (gpr::analysis): the diagnostic
// model, a table of malformed with+ programs asserting the expected
// diagnostic code and plan path, the pre-execution gate wiring inside
// ExecuteWithPlus, the SQL lint front-end, and — most importantly — that
// every seed algorithm of the paper's evaluation passes the gate with
// zero diagnostics.
#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "algos/common.h"
#include "algos/registry.h"
#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "core/explain.h"
#include "core/plan.h"
#include "core/with_plus.h"
#include "sql/lint.h"
#include "test_util.h"

namespace gpr {
namespace {

namespace ops = ra::ops;
using analysis::AnalyzeWithPlus;
using analysis::Diagnostic;
using analysis::DiagnosticBag;
using core::ExecuteWithPlus;
using core::Scan;
using core::Subquery;
using core::UnionMode;
using core::WithPlusQuery;
using gpr::testing::MakeCatalog;
using gpr::testing::TinyDag;
using gpr::testing::TinyGraph;
using ra::Col;
using ra::Schema;
using ra::ValueType;

/// First diagnostic with `code`, or nullopt.
std::optional<Diagnostic> Find(const DiagnosticBag& bag,
                               const std::string& code) {
  for (const auto& d : bag.diagnostics()) {
    if (d.code == code) return d;
  }
  return std::nullopt;
}

/// The well-formed transitive-closure query every malformed case mutates.
WithPlusQuery TcQuery(UnionMode mode = UnionMode::kUnionDistinct) {
  WithPlusQuery q;
  q.rec_name = "TCx";
  q.rec_schema = Schema{{"F", ValueType::kInt64}, {"T", ValueType::kInt64}};
  q.init.push_back(
      {core::ProjectOp(Scan("E"),
                       {ops::As(Col("F"), "F"), ops::As(Col("T"), "T")}),
       {}});
  q.recursive.push_back(
      {core::ProjectOp(core::JoinOp(Scan("TCx"), Scan("E"), {{"T"}, {"F"}}),
                       {ops::As(Col("TCx.F"), "F"),
                        ops::As(Col("E.T"), "T")}),
       {}});
  q.mode = mode;
  return q;
}

/// A value-recursion query (ID -> val) folding in-neighbour values with
/// `agg` under union by update — the PageRank shape.
WithPlusQuery ValueQuery(ra::AggKind agg, int maxrec) {
  WithPlusQuery q;
  q.rec_name = "Rv";
  q.rec_schema =
      Schema{{"ID", ValueType::kInt64}, {"val", ValueType::kDouble}};
  q.init.push_back(
      {core::ProjectOp(Scan("V"), {ops::As(Col("ID"), "ID"),
                                   ops::As(Col("vw"), "val")}),
       {}});
  q.recursive.push_back(
      {core::ProjectOp(
           core::GroupByOp(
               core::JoinOp(Scan("Rv"), Scan("E"), {{"ID"}, {"F"}}),
               {"E.T"}, {ra::AggSpec{agg, Col("Rv.val"), "nv"}}),
           {ops::As(Col("T"), "ID"), ops::As(Col("nv"), "val")}),
       {}});
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {"ID"};
  q.maxrecursion = maxrec;
  return q;
}

// ---------------------------------------------------------------------
// The malformed-program table. Each case builds a query, names the
// diagnostic code the analyzer must raise, the plan path it must carry,
// and (for errors) the StatusCode the gate maps it to.
// ---------------------------------------------------------------------

struct MalformedCase {
  std::string name;
  std::function<WithPlusQuery()> build;
  std::string code;        ///< expected diagnostic, e.g. "GPR-E107"
  std::string path;        ///< expected plan path (substring match)
  bool is_error = true;    ///< false: warning — must NOT block the gate
  StatusCode gate_code = StatusCode::kInvalidArgument;
};

std::vector<MalformedCase> MalformedCases() {
  std::vector<MalformedCase> cases;

  // Type mismatch: the recursive subquery drops a column of TCx(F, T).
  cases.push_back(
      {"SubqueryIncompatibleWithRecSchema",
       [] {
         auto q = TcQuery();
         q.recursive[0].plan = core::ProjectOp(
             core::JoinOp(Scan("TCx"), Scan("E"), {{"T"}, {"F"}}),
             {ops::As(Col("TCx.F"), "F")});
         return q;
       },
       "GPR-E107", "recursive[0]", true, StatusCode::kTypeMismatch});

  // Unknown table: the recursive subquery scans a relation that is
  // neither in the catalog nor a computed-by definition.
  cases.push_back(
      {"UnknownTable",
       [] {
         auto q = TcQuery();
         q.recursive[0].plan = core::ProjectOp(
             core::JoinOp(Scan("TCx"), Scan("Nope"), {{"T"}, {"F"}}),
             {ops::As(Col("TCx.F"), "F"), ops::As(Col("Nope.T"), "T")});
         return q;
       },
       "GPR-E101", "Scan(Nope)", true, StatusCode::kNotFound});

  // Join key that resolves on neither side.
  cases.push_back(
      {"BadJoinKey",
       [] {
         auto q = TcQuery();
         q.recursive[0].plan = core::ProjectOp(
             core::JoinOp(Scan("TCx"), Scan("E"), {{"Nope"}, {"F"}}),
             {ops::As(Col("TCx.F"), "F"), ops::As(Col("E.T"), "T")});
         return q;
       },
       "GPR-E104", "Join", true, StatusCode::kBindError});

  // Union-by-update key that is not a recursive-relation column.
  cases.push_back(
      {"BadUpdateKey",
       [] {
         auto q = TcQuery(UnionMode::kUnionByUpdate);
         q.update_keys = {"Nope"};
         return q;
       },
       "GPR-E108", "update_keys", true, StatusCode::kBindError});

  // Non-stratifiable computed-by chain: definition A reads definition B
  // before B is defined (a forward reference = a cycle among the s(T)
  // stratum, Theorem 5.1 / Section 6).
  cases.push_back(
      {"ForwardReferenceNotStratifiable",
       [] {
         auto q = TcQuery();
         Subquery rec;
         rec.computed_by.push_back(
             {"A", core::ProjectOp(Scan("B"), {ops::As(Col("F"), "F"),
                                               ops::As(Col("T"), "T")})});
         rec.computed_by.push_back(
             {"B", core::ProjectOp(Scan("TCx"),
                                   {ops::As(Col("F"), "F"),
                                    ops::As(Col("T"), "T")})});
         rec.plan = core::ProjectOp(
             core::JoinOp(Scan("TCx"), Scan("A"), {{"T"}, {"F"}}),
             {ops::As(Col("TCx.F"), "F"), ops::As(Col("A.T"), "T")});
         q.recursive[0] = std::move(rec);
         return q;
       },
       "GPR-E201", "recursive[0]/computed_by[A]", true,
       StatusCode::kNotStratifiable});

  // Non-monotone aggregate that can never stabilize: avg under UBU.
  cases.push_back({"AvgUnderUnionByUpdate",
                   [] { return ValueQuery(ra::AggKind::kAvg, 10); },
                   "GPR-E301", "recursive", true,
                   StatusCode::kInvalidArgument});

  // Missing maxrecursion on a sum-folding value recursion (warning).
  cases.push_back({"SumWithoutMaxrecursion",
                   [] { return ValueQuery(ra::AggKind::kSum, 0); },
                   "GPR-W302", "recursive", false});

  // Missing maxrecursion on whole-relation union all (warning).
  cases.push_back({"UnionAllWithoutMaxrecursion",
                   [] { return TcQuery(UnionMode::kUnionAll); },
                   "GPR-W401", "recursive", false});

  // Negation over the recursive relation under SQL'99 working-table
  // semantics reads an incomplete stratum.
  cases.push_back(
      {"NegationUnderWorkingTable",
       [] {
         auto q = TcQuery(UnionMode::kUnionAll);
         q.recursive[0].plan = core::AntiJoinOp(
             q.recursive[0].plan, Scan("TCx"), {{"F", "T"}, {"F", "T"}});
         q.sql99_working_table = true;
         q.maxrecursion = 50;
         return q;
       },
       "GPR-E303", "recursive[0]", true, StatusCode::kInvalidArgument});

  return cases;
}

class MalformedPrograms : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(MalformedPrograms, AnalyzerRaisesCodeAtPath) {
  const MalformedCase& c = GetParam();
  auto catalog = MakeCatalog(TinyGraph());
  const WithPlusQuery q = c.build();

  DiagnosticBag bag = AnalyzeWithPlus(q, catalog);
  auto diag = Find(bag, c.code);
  ASSERT_TRUE(diag.has_value()) << "expected " << c.code << ", got:\n"
                                << bag.Render();
  EXPECT_NE(diag->plan_path.find(c.path), std::string::npos)
      << "path '" << diag->plan_path << "' does not contain '" << c.path
      << "'";

  if (c.is_error) {
    EXPECT_TRUE(bag.HasErrors());
    EXPECT_EQ(diag->severity, analysis::Severity::kError);
    EXPECT_EQ(diag->status_code, c.gate_code);
  } else {
    EXPECT_EQ(diag->severity, analysis::Severity::kWarning);
    EXPECT_EQ(bag.NumErrors(), 0u) << bag.Render();
    // Warnings never block the gate.
    size_t warnings = 0;
    EXPECT_TRUE(analysis::GateWithPlus(q, catalog, &warnings).ok());
    EXPECT_GE(warnings, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Analysis, MalformedPrograms, ::testing::ValuesIn(MalformedCases()),
    [](const ::testing::TestParamInfo<MalformedCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------
// Structural diagnostics (the GPR-E0xx family).
// ---------------------------------------------------------------------

TEST(AnalysisStructure, ReportsStructuralDefects) {
  auto catalog = MakeCatalog(TinyGraph());

  WithPlusQuery empty;
  DiagnosticBag bag = AnalyzeWithPlus(empty, catalog);
  EXPECT_TRUE(bag.Has("GPR-E001"));  // no name
  EXPECT_TRUE(bag.Has("GPR-E002"));  // no schema
  EXPECT_TRUE(bag.Has("GPR-E003"));  // no recursive subquery

  auto q = TcQuery(UnionMode::kUnionByUpdate);
  q.update_keys = {"F"};
  q.recursive.push_back(q.recursive[0]);  // UBU allows exactly one
  q.maxrecursion = 40000;                 // out of the hint range
  bag = AnalyzeWithPlus(q, catalog);
  EXPECT_TRUE(bag.Has("GPR-E006")) << bag.Render();
  EXPECT_TRUE(bag.Has("GPR-E007")) << bag.Render();
}

// ---------------------------------------------------------------------
// Gate wiring inside ExecuteWithPlus.
// ---------------------------------------------------------------------

TEST(AnalysisGate, BlocksBeforeExecutionWithCodeAndPath) {
  auto catalog = MakeCatalog(TinyGraph());
  auto q = TcQuery();
  q.recursive[0].plan = core::ProjectOp(
      core::JoinOp(Scan("TCx"), Scan("E"), {{"T"}, {"F"}}),
      {ops::As(Col("TCx.F"), "F")});  // drops T -> GPR-E107

  auto result = ExecuteWithPlus(q, catalog, core::OracleLike());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeMismatch);
  EXPECT_NE(result.status().message().find("GPR-E107"), std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find("recursive[0]"),
            std::string::npos)
      << result.status().message();
}

TEST(AnalysisGate, ProfileFlagBypassesTheGate) {
  auto catalog = MakeCatalog(TinyGraph());
  auto q = TcQuery();
  q.recursive[0].plan = core::ProjectOp(
      core::JoinOp(Scan("TCx"), Scan("E"), {{"T"}, {"F"}}),
      {ops::As(Col("TCx.F"), "F")});

  auto profile = core::OracleLike();
  profile.static_analysis_gate = false;
  auto result = ExecuteWithPlus(q, catalog, profile);
  // The defect still surfaces — but from the executor, without the
  // analyzer's code and plan path.
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message().find("GPR-"), std::string::npos)
      << result.status().message();
}

TEST(AnalysisGate, WarningsAreCountedButDoNotBlock) {
  // A sum-folding UBU recursion with no cap converges on a DAG (values
  // stabilize once every ancestor has), so it runs fine — but the
  // analyzer cannot prove that, and reports GPR-W302.
  auto catalog = MakeCatalog(TinyDag());
  auto result = ExecuteWithPlus(ValueQuery(ra::AggKind::kSum, 0), catalog,
                                core::OracleLike());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  EXPECT_GE(result->gate_warnings, 1u);
}

TEST(AnalysisGate, CleanQueryHasZeroWarnings) {
  auto catalog = MakeCatalog(TinyGraph());
  auto result =
      ExecuteWithPlus(TcQuery(), catalog, core::OracleLike());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->gate_warnings, 0u);
}

// ---------------------------------------------------------------------
// Every seed algorithm of the paper's evaluation passes the gate
// unchanged: result OK and zero analyzer warnings.
// ---------------------------------------------------------------------

TEST(AnalysisGate, AllSeedAlgorithmsPassClean) {
  for (const auto& entry : algos::EvaluationSet(/*include_toposort=*/true)) {
    graph::Graph g = entry.needs_dag ? TinyDag() : TinyGraph();
    std::vector<int64_t> labels;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      labels.push_back(1 + (v % 3));  // LP / KS need VL(ID, label)
    }
    g.set_node_labels(std::move(labels));
    auto catalog = MakeCatalog(g);

    algos::AlgoOptions opt;
    auto result = entry.run(catalog, opt);
    ASSERT_TRUE(result.ok()) << entry.name << ": " << result.status();
    EXPECT_EQ(result->gate_warnings, 0u)
        << entry.name << " tripped the static analyzer";
  }
}

// ---------------------------------------------------------------------
// Explain integration and the SQL lint front-end.
// ---------------------------------------------------------------------

TEST(AnalysisExplain, RendersGateVerdict) {
  auto catalog = MakeCatalog(TinyGraph());
  auto clean =
      core::ExplainWithPlus(TcQuery(), catalog, core::OracleLike());
  EXPECT_NE(clean.find("static analysis: clean"), std::string::npos);

  auto q = TcQuery(UnionMode::kUnionByUpdate);
  q.update_keys = {"Nope"};
  auto dirty = core::ExplainWithPlus(q, catalog, core::OracleLike());
  EXPECT_NE(dirty.find("GPR-E108"), std::string::npos) << dirty;
}

TEST(SqlLint, FlagsParseBindAndAnalysisFindings) {
  auto catalog = MakeCatalog(TinyGraph());

  auto bag = sql::LintSql("selec oops", catalog);
  EXPECT_TRUE(bag.Has("GPR-E901")) << bag.Render();

  bag = sql::LintSql("select F from NoSuchTable", catalog);
  EXPECT_TRUE(bag.Has("GPR-E902")) << bag.Render();

  // Column binding is deferred to the analyzer's type-flow pass.
  bag = sql::LintSql("select nope from E", catalog);
  EXPECT_TRUE(bag.Has("GPR-E102")) << bag.Render();

  // Fig 1 TC: union all with no cap -> the W401 convergence lint.
  bag = sql::LintSql(R"(
    with TC (F, T) as (
      (select F, T from E)
      union all
      (select TC.F, E.T from TC, E where TC.T = E.F))
    select * from TC)",
                     catalog);
  EXPECT_EQ(bag.NumErrors(), 0u) << bag.Render();
  EXPECT_TRUE(bag.Has("GPR-W401")) << bag.Render();

  bag = sql::LintSql("select F, T from E", catalog);
  EXPECT_TRUE(bag.empty()) << bag.Render();
}

// ---------------------------------------------------------------------
// The diagnostic model itself.
// ---------------------------------------------------------------------

TEST(DiagnosticBag, ToStatusUsesFirstErrorAndMappedCode) {
  DiagnosticBag bag;
  EXPECT_TRUE(bag.ToStatus().ok());

  bag.AddWarning("GPR-W401", "recursive", "might diverge");
  EXPECT_TRUE(bag.ToStatus().ok());  // warnings never block

  bag.AddError("GPR-E107", StatusCode::kTypeMismatch, "init[0]",
               "schema mismatch", "fix the projection");
  bag.AddError("GPR-E101", StatusCode::kNotFound, "Scan(X)", "unknown");
  Status st = bag.ToStatus();
  EXPECT_EQ(st.code(), StatusCode::kTypeMismatch);
  EXPECT_NE(st.message().find("GPR-E107"), std::string::npos);
  EXPECT_NE(st.message().find("init[0]"), std::string::npos);
  EXPECT_NE(st.message().find("fix the projection"), std::string::npos);
  EXPECT_NE(st.message().find("more diagnostic"), std::string::npos);

  EXPECT_EQ(bag.NumErrors(), 2u);
  EXPECT_EQ(bag.NumWarnings(), 1u);
  EXPECT_TRUE(bag.Has("GPR-E101"));
  EXPECT_FALSE(bag.Has("GPR-E999"));
  EXPECT_NE(bag.Render().find("warning GPR-W401"), std::string::npos);
}

// ---------------------------------------------------------------------
// Facts-derived diagnostics (the GPR-W31x / GPR-E312 family): each test
// builds the smallest query whose abstract interpretation proves the
// defect, and checks the stable code plus the plan path it names.
// ---------------------------------------------------------------------

TEST(AnalysisFacts, W310FlagsProvablyFalsePredicate) {
  auto catalog = MakeCatalog(TinyGraph());
  auto q = TcQuery();
  q.init[0].plan =
      core::SelectOp(q.init[0].plan, ra::Lt(ra::Lit(5), ra::Lit(3)));
  DiagnosticBag bag = AnalyzeWithPlus(q, catalog);
  auto d = Find(bag, "GPR-W310");
  ASSERT_TRUE(d.has_value()) << bag.Render();
  EXPECT_NE(d->plan_path.find("init[0]"), std::string::npos) << d->plan_path;
  EXPECT_EQ(bag.NumErrors(), 0u) << bag.Render();
}

TEST(AnalysisFacts, W311FlagsLiteralTautologySelect) {
  auto catalog = MakeCatalog(TinyGraph());
  auto q = TcQuery();
  q.init[0].plan =
      core::SelectOp(q.init[0].plan, ra::Ge(ra::Lit(3), ra::Lit(2)));
  DiagnosticBag bag = AnalyzeWithPlus(q, catalog);
  EXPECT_TRUE(bag.Has("GPR-W311")) << bag.Render();
  EXPECT_EQ(bag.NumErrors(), 0u) << bag.Render();
}

TEST(AnalysisFacts, E312FlagsConflictingMultiRowKeyedUpdate) {
  // Both union-all branches are scalar aggregates (exactly one row each)
  // projecting the literal key 1 — so every iteration provably writes the
  // same key twice under union by update.
  auto catalog = MakeCatalog(TinyGraph());
  WithPlusQuery q;
  q.rec_name = "Ru";
  q.rec_schema =
      Schema{{"ID", ValueType::kInt64}, {"W", ValueType::kInt64}};
  q.init.push_back({core::ProjectOp(Scan("V"), {ops::As(Col("ID"), "ID"),
                                                ops::As(Col("ID"), "W")}),
                    {}});
  auto branch = [](core::PlanPtr in) {
    return core::ProjectOp(
        core::GroupByOp(std::move(in), {}, {ra::CountStar("c")}),
        {ops::As(ra::Lit(1), "ID"), ops::As(Col("c"), "W")});
  };
  q.recursive.push_back(
      {core::UnionAllOp(branch(Scan("E")), branch(Scan("Ru"))), {}});
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {"ID"};

  DiagnosticBag bag = AnalyzeWithPlus(q, catalog);
  auto d = Find(bag, "GPR-E312");
  ASSERT_TRUE(d.has_value()) << bag.Render();
  EXPECT_NE(d->plan_path.find("recursive[0]"), std::string::npos) << d->plan_path;

  auto result = ExecuteWithPlus(q, catalog, core::OracleLike());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("GPR-E312"), std::string::npos)
      << result.status().message();
}

TEST(AnalysisFacts, W313FlagsProvablyAppendingUncappedUnionAll) {
  // A scalar aggregate delta provably appends one row per iteration; with
  // union all and no cap the fixpoint provably cannot converge.
  auto catalog = MakeCatalog(TinyGraph());
  WithPlusQuery q;
  q.rec_name = "Rc";
  q.rec_schema = Schema{{"c", ValueType::kInt64}};
  q.init.push_back(
      {core::ProjectOp(Scan("V"), {ops::As(Col("ID"), "c")}), {}});
  q.recursive.push_back(
      {core::ProjectOp(
           core::GroupByOp(Scan("Rc"), {}, {ra::CountStar("n")}),
           {ops::As(Col("n"), "c")}),
       {}});
  q.mode = UnionMode::kUnionAll;
  q.maxrecursion = 0;
  DiagnosticBag bag = AnalyzeWithPlus(q, catalog);
  EXPECT_TRUE(bag.Has("GPR-W313")) << bag.Render();
  EXPECT_EQ(bag.NumErrors(), 0u) << bag.Render();
}

TEST(AnalysisFacts, W314FlagsNonMonotoneFoldUnderUncappedDistinct) {
  auto q = ValueQuery(ra::AggKind::kSum, /*maxrec=*/0);
  q.mode = UnionMode::kUnionDistinct;
  q.update_keys.clear();
  auto catalog = MakeCatalog(TinyGraph());
  DiagnosticBag bag = AnalyzeWithPlus(q, catalog);
  auto d = Find(bag, "GPR-W314");
  ASSERT_TRUE(d.has_value()) << bag.Render();
  EXPECT_NE(d->message.find("sum"), std::string::npos) << d->message;
  EXPECT_EQ(bag.NumErrors(), 0u) << bag.Render();

  // min is a monotone fold: same shape, no W314.
  auto ok = ValueQuery(ra::AggKind::kMin, /*maxrec=*/0);
  ok.mode = UnionMode::kUnionDistinct;
  ok.update_keys.clear();
  bag = AnalyzeWithPlus(ok, catalog);
  EXPECT_FALSE(bag.Has("GPR-W314")) << bag.Render();
}

TEST(AnalysisFacts, W315FlagsDeadDefinitionColumns) {
  // Dd carries E.ew as `w`, but the delta only reads F and T — backward
  // liveness proves `w` dead across every consumer.
  auto catalog = MakeCatalog(TinyGraph());
  auto q = TcQuery();
  core::Subquery sq;
  sq.computed_by.push_back(
      {"Dd", core::ProjectOp(
                 core::JoinOp(Scan("TCx"), Scan("E"), {{"T"}, {"F"}}),
                 {ops::As(Col("TCx.F"), "F"), ops::As(Col("E.T"), "T"),
                  ops::As(Col("E.ew"), "w")})});
  sq.plan = core::ProjectOp(
      Scan("Dd"), {ops::As(Col("F"), "F"), ops::As(Col("T"), "T")});
  q.recursive[0] = sq;

  DiagnosticBag bag = AnalyzeWithPlus(q, catalog);
  auto d = Find(bag, "GPR-W315");
  ASSERT_TRUE(d.has_value()) << bag.Render();
  EXPECT_NE(d->plan_path.find("computed_by[Dd]"), std::string::npos) << d->plan_path;
  EXPECT_NE(d->message.find("w"), std::string::npos) << d->message;
  EXPECT_EQ(bag.NumErrors(), 0u) << bag.Render();
}

TEST(AnalysisFacts, W316FlagsDistinctOverDuplicateFreeInput) {
  auto catalog = MakeCatalog(TinyGraph());
  auto q = TcQuery();
  q.init[0].plan = core::DistinctOp(core::DistinctOp(q.init[0].plan));
  DiagnosticBag bag = AnalyzeWithPlus(q, catalog);
  EXPECT_TRUE(bag.Has("GPR-W316")) << bag.Render();
  EXPECT_EQ(bag.NumErrors(), 0u) << bag.Render();
}

TEST(AnalysisFacts, W317FlagsProvablyEmptyRecursiveStep) {
  auto catalog = MakeCatalog(TinyGraph());
  auto q = TcQuery();
  q.recursive[0].plan =
      core::SelectOp(q.recursive[0].plan, ra::Lt(ra::Lit(5), ra::Lit(3)));
  DiagnosticBag bag = AnalyzeWithPlus(q, catalog);
  EXPECT_TRUE(bag.Has("GPR-W317")) << bag.Render();
  EXPECT_TRUE(bag.Has("GPR-W310")) << bag.Render();
  EXPECT_EQ(bag.NumErrors(), 0u) << bag.Render();

  // Degenerate but legal: execution returns exactly the init rows.
  auto result = ExecuteWithPlus(q, catalog, core::OracleLike());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  EXPECT_GE(result->gate_warnings, 2u);
}

TEST(AnalysisFacts, W318FlagsCsrEligibleJoinWithKernelsOff) {
  // An MV-join whose matrix side is a loop-invariant scan is csr_eligible;
  // `kernels off` downgrades it to the generic hash-join path, which the
  // diagnostic surfaces.
  auto catalog = MakeCatalog(TinyGraph());
  WithPlusQuery q;
  q.rec_name = "Rk";
  q.rec_schema =
      Schema{{"ID", ValueType::kInt64}, {"vw", ValueType::kDouble}};
  q.init.push_back(
      {core::ProjectOp(Scan("V"), {ops::As(Col("ID"), "ID"),
                                   ops::As(Col("vw"), "vw")}),
       {}});
  q.recursive.push_back(
      {core::MVJoinOp(Scan("E"), Scan("Rk"), core::MinTimes(),
                      core::MVOrientation::kTransposed),
       {}});
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {"ID"};
  q.csr_kernels = 0;  // explicit `kernels off`
  DiagnosticBag bag = AnalyzeWithPlus(q, catalog);
  auto d = Find(bag, "GPR-W318");
  ASSERT_TRUE(d.has_value()) << bag.Render();
  EXPECT_NE(d->message.find("CSR-eligible"), std::string::npos) << d->message;
  EXPECT_EQ(bag.NumErrors(), 0u) << bag.Render();

  // Default (inherit the profile) keeps the kernel path: no W318.
  q.csr_kernels = -1;
  bag = AnalyzeWithPlus(q, catalog);
  EXPECT_FALSE(bag.Has("GPR-W318")) << bag.Render();
}

// ---------------------------------------------------------------------
// Stratification edge cases: malformed recursion shapes must produce a
// stable diagnostic, never a crash or a hang.
// ---------------------------------------------------------------------

TEST(AnalysisStratification, AliasedViewMutualRecursionIsStableE201) {
  // A reads B through a view alias and B reads A the same way. The
  // computed-by chain cannot be ordered; the alias must not hide the
  // forward reference from the cycle check.
  auto catalog = MakeCatalog(TinyGraph());
  auto q = TcQuery();
  core::Subquery sq;
  sq.computed_by.push_back(
      {"A", core::ProjectOp(
                core::RenameOp(Scan("B"), "BV"),
                {ops::As(Col("F"), "F"), ops::As(Col("T"), "T")})});
  sq.computed_by.push_back(
      {"B", core::ProjectOp(
                core::RenameOp(Scan("A"), "AV"),
                {ops::As(Col("F"), "F"), ops::As(Col("T"), "T")})});
  sq.plan = core::ProjectOp(
      core::JoinOp(Scan("TCx"), Scan("A"), {{"T"}, {"F"}}),
      {ops::As(Col("TCx.F"), "F"), ops::As(Col("A.T"), "T")});
  q.recursive[0] = sq;

  DiagnosticBag bag = AnalyzeWithPlus(q, catalog);
  auto d = Find(bag, "GPR-E201");
  ASSERT_TRUE(d.has_value()) << bag.Render();
  EXPECT_NE(d->plan_path.find("computed_by[A]"), std::string::npos) << d->plan_path;

  auto result = ExecuteWithPlus(q, catalog, core::OracleLike());
  ASSERT_FALSE(result.ok());
  // Core's own validation rejects the cycle before the gate even runs —
  // either way the failure is a stable status, never a crash.
  EXPECT_NE(result.status().message().find("cycle"), std::string::npos)
      << result.status().message();
}

TEST(AnalysisStratification, SelfNegationBehindDeadBranchIsStableE204) {
  // D anti-joins against itself behind a provably-false filter. After
  // predicate pushdown the negated branch would be dead and the program
  // XY-stratifiable — but stratification judges the program as written,
  // so the verdict is a stable GPR-E204 either way, never a crash.
  auto catalog = MakeCatalog(TinyGraph());
  auto q = TcQuery();
  core::Subquery sq;
  sq.computed_by.push_back(
      {"D", core::ProjectOp(
                core::AntiJoinOp(
                    core::ProjectOp(Scan("E"), {ops::As(Col("F"), "F"),
                                                ops::As(Col("T"), "T")}),
                    core::SelectOp(Scan("D"),
                                   ra::Lt(ra::Lit(5), ra::Lit(3))),
                    {{"F"}, {"F"}}),
                {ops::As(Col("F"), "F"), ops::As(Col("T"), "T")})});
  sq.plan = core::ProjectOp(
      core::JoinOp(Scan("TCx"), Scan("D"), {{"T"}, {"F"}}),
      {ops::As(Col("TCx.F"), "F"), ops::As(Col("D.T"), "T")});
  q.recursive[0] = sq;

  DiagnosticBag bag = AnalyzeWithPlus(q, catalog);
  EXPECT_TRUE(bag.Has("GPR-E204")) << bag.Render();

  auto result = ExecuteWithPlus(q, catalog, core::OracleLike());
  ASSERT_FALSE(result.ok());
  // Core's own validation rejects the cycle before the gate even runs —
  // either way the failure is a stable status, never a crash.
  EXPECT_NE(result.status().message().find("cycle"), std::string::npos)
      << result.status().message();
}

}  // namespace
}  // namespace gpr
