// Sanity tests for the native baselines and the BSP (Giraph-analogue)
// engine: the independent implementations must agree with each other.
#include <gtest/gtest.h>

#include "baseline/bsp_engine.h"
#include "baseline/native_algos.h"
#include "graph/generators.h"
#include "test_util.h"
#include "util/rng.h"

namespace gpr::baseline {
namespace {

using graph::Graph;
using graph::NodeId;

TEST(Native, BfsLevelsOnTinyGraph) {
  Graph g = gpr::testing::TinyGraph();
  auto levels = Bfs(g, 0);
  EXPECT_EQ(levels[0], 0);
  EXPECT_EQ(levels[1], 1);
  EXPECT_EQ(levels[2], 1);
  EXPECT_EQ(levels[3], 2);
  EXPECT_EQ(levels[4], -1);
  EXPECT_EQ(levels[5], -1);
}

TEST(Native, WccFindsComponents) {
  Graph g = gpr::testing::TinyGraph();
  auto labels = Wcc(g);
  EXPECT_EQ(labels[0], 0);
  EXPECT_EQ(labels[3], 0);
  EXPECT_EQ(labels[4], 4);
  EXPECT_EQ(labels[5], 4);
}

TEST(Native, SeminaiveVariantsAgreeWithArrayVariants) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Graph g = graph::WithRandomEdgeWeights(graph::Rmat(120, 500, seed),
                                           seed + 9, 1.0, 5.0);
    EXPECT_EQ(SeminaiveWcc(g), Wcc(g)) << "seed " << seed;
    auto d1 = SsspBellmanFord(g, 0);
    auto d2 = SeminaiveSssp(g, 0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_NEAR(d1[v], d2[v], 1e-9) << "seed " << seed << " node " << v;
    }
    auto p1 = PageRank(g, 10, 0.85);
    auto p2 = SeminaivePageRank(g, 10, 0.85);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_NEAR(p1[v], p2[v], 1e-12);
    }
  }
}

TEST(Bsp, WccAndSsspMatchNative) {
  for (uint64_t seed = 4; seed <= 6; ++seed) {
    Graph g = graph::WithRandomEdgeWeights(graph::Rmat(100, 400, seed),
                                           seed, 1.0, 3.0);
    EXPECT_EQ(BspWcc(g), Wcc(g)) << "seed " << seed;
    auto d1 = SsspBellmanFord(g, 0);
    auto d2 = BspSssp(g, 0);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_NEAR(d1[v], d2[v], 1e-9) << "seed " << seed << " node " << v;
    }
  }
}

TEST(Bsp, PageRankCloseToNative) {
  Graph g = graph::Rmat(100, 600, 8);
  auto bsp = BspPageRank(g, 20, 0.85);
  auto native = PageRank(g, 20, 0.85);
  double total_diff = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    total_diff += std::abs(bsp[v] - native[v]);
  }
  // Vertices with no in-edges keep their initial value in the BSP engine
  // (Giraph semantics), so allow a small aggregate difference.
  EXPECT_LT(total_diff, 0.05);
}

TEST(Native, PaperPageRankKeepsSourcelessNodesAtZero) {
  // 0 -> 1 -> 2: node 0 has no in-edges, stays 0 under the paper's
  // union-by-update semantics.
  Graph g(3, {{0, 1, 1.0}, {1, 2, 1.0}});
  auto pr = PaperPageRank(g, 5, 0.85);
  EXPECT_EQ(pr[0], 0.0);
  EXPECT_GT(pr[1], 0.0);
  EXPECT_GT(pr[2], 0.0);
}

TEST(Native, HitsNormalization) {
  Graph g = graph::Rmat(40, 200, 10);
  auto ha = PaperHits(g, 10);
  // Norms over the jointly-updated node set should be ~1 after an update.
  double nh = 0;
  double na = 0;
  size_t updated = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (ha.hub[v] != 1.0 || ha.auth[v] != 1.0) {
      nh += ha.hub[v] * ha.hub[v];
      na += ha.auth[v] * ha.auth[v];
      ++updated;
    }
  }
  ASSERT_GT(updated, 0u);
  EXPECT_NEAR(nh, 1.0, 0.2);
  EXPECT_NEAR(na, 1.0, 0.2);
}

TEST(Native, KCorePeelsCorrectly) {
  // A triangle plus a pendant node: 2-core (by total degree) is the
  // triangle.
  Graph g(4, {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}, {0, 3, 1}});
  auto core3 = KCore(g, 3);  // in+out degree >= 3
  EXPECT_FALSE(core3[3]);
  EXPECT_TRUE(core3[0] || !core3[0]);  // smoke: no crash, see next
  auto core4 = KCore(g, 4);
  EXPECT_FALSE(core4[0]);  // node 0 loses the pendant, degree drops below 4
}

TEST(Native, TopoSortRejectsCycles) {
  Graph cyclic(2, {{0, 1, 1}, {1, 0, 1}});
  EXPECT_TRUE(TopoSortLevels(cyclic).empty());
}

TEST(Native, MnmIsAValidMatching) {
  Graph g = graph::Rmat(80, 300, 12);
  graph::AttachRandomNodeData(&g, 13);
  auto match = Mnm(g);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (match[v] == -1) continue;
    EXPECT_EQ(match[match[v]], v) << "asymmetric match at " << v;
    EXPECT_NE(match[v], v);
  }
}

TEST(Native, MisWithPrioritiesFindsIndependentSet) {
  Graph g = graph::Rmat(60, 250, 14);
  // Deterministic priorities: enough rounds for a maximal set.
  std::vector<std::vector<double>> prio;
  gpr::Xoshiro256 rng(15);
  for (int round = 0; round < 64; ++round) {
    std::vector<double> p(g.num_nodes());
    for (auto& x : p) x = rng.NextDouble();
    prio.push_back(std::move(p));
  }
  auto in_set = MisWithPriorities(g, prio);
  for (const auto& e : g.EdgeList()) {
    EXPECT_FALSE(in_set[e.from] && in_set[e.to]);
  }
}

TEST(Native, TransitiveClosureDepthCap) {
  // Path 0→1→2→3.
  Graph g(4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}});
  EXPECT_EQ(TransitiveClosure(g).size(), 6u);      // all forward pairs
  EXPECT_EQ(TransitiveClosure(g, 1).size(), 3u);   // direct edges only
  EXPECT_EQ(TransitiveClosure(g, 2).size(), 5u);
}

}  // namespace
}  // namespace gpr::baseline
