// Differential tests for columnar storage + vectorized batch execution
// (ra/column.h, ra/vectorized.h, docs/performance.md). The contract is
// the same one the CSR kernels live under: the batch path must be
// *row-identical* — order included — to the row-at-a-time oracle for
// every converted operator, DOP, cache setting, and for every evaluation
// algorithm end to end. Shapes the batch evaluator cannot bind (boxed
// columns, unsupported expressions) must fall back to the oracle and say
// so through VectorCounters::vector_fallbacks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algos/common.h"
#include "algos/registry.h"
#include "core/explain.h"
#include "core/union_by_update.h"
#include "core/with_plus.h"
#include "graph/generators.h"
#include "ra/column.h"
#include "ra/operators.h"
#include "ra/plan_cache.h"
#include "ra/vectorized.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "test_util.h"
#include "util/rng.h"

namespace gpr {
namespace {

namespace ops = ra::ops;
using gpr::testing::MakeCatalog;
using ra::Col;
using ra::ColumnStore;
using ra::ColumnVec;
using ra::Lit;
using ra::Schema;
using ra::Table;
using ra::Value;
using ra::ValueType;
using ra::VectorCounters;

void ExpectRowsIdentical(const Table& a, const Table& b,
                         const std::string& label) {
  ASSERT_EQ(a.NumRows(), b.NumRows()) << label;
  for (size_t i = 0; i < a.NumRows(); ++i) {
    EXPECT_TRUE(a.row(i) == b.row(i)) << label << ": row " << i << " differs";
  }
}

/// A numeric fixture wide enough to span several 2048-row batches, with
/// NULL holes in every column so the bitmap paths run.
Table NumericTable(const std::string& name, size_t n, uint64_t seed) {
  Xoshiro256 rng(seed);
  Table t(name, Schema{{"id", ValueType::kInt64},
                       {"x", ValueType::kInt64},
                       {"y", ValueType::kDouble}});
  for (size_t i = 0; i < n; ++i) {
    Value x = rng.NextBounded(17) == 0
                  ? Value::Null()
                  : Value(static_cast<int64_t>(rng.NextBounded(1000)));
    Value y = rng.NextBounded(19) == 0 ? Value::Null()
                                       : Value(rng.NextDouble() * 10.0);
    t.AddRow({static_cast<int64_t>(i), x, y});
  }
  return t;
}

ra::EvalContext MakeCtx(int dop, VectorCounters* vc, ra::PlanCache* cache) {
  ra::EvalContext ctx;
  ctx.dop = dop;
  ctx.min_parallel_rows = 1;  // admit the tiny fixtures
  ctx.vectors = vc;
  ctx.cache = cache;
  return ctx;
}

// ------------------------------------------------------------ ColumnStore

TEST(ColumnStore, ClassifiesRepsAndRoundTripsValues) {
  Table t("t", Schema{{"i", ValueType::kInt64},
                      {"d", ValueType::kDouble},
                      {"s", ValueType::kString},
                      {"m", ValueType::kString}});
  t.AddRow({int64_t{1}, 1.5, "a", Value(int64_t{7})});
  t.AddRow({int64_t{2}, 2.5, "b", Value("mix")});
  t.AddRow({Value::Null(), Value::Null(), Value::Null(), Value::Null()});
  const ColumnStore cols = ColumnStore::FromRows(t.schema(), t.rows());
  EXPECT_EQ(cols.column(0).rep(), ColumnVec::Rep::kInt64);
  EXPECT_EQ(cols.column(1).rep(), ColumnVec::Rep::kDouble);
  EXPECT_EQ(cols.column(2).rep(), ColumnVec::Rep::kString);
  EXPECT_EQ(cols.column(3).rep(), ColumnVec::Rep::kBoxed);  // int + string
  for (size_t c = 0; c < 4; ++c) {
    for (size_t r = 0; r < t.NumRows(); ++r) {
      EXPECT_TRUE(cols.column(c).Get(r).Equals(t.row(r)[c]))
          << "col " << c << " row " << r;
    }
  }
}

TEST(ColumnStore, NullBitmapSurvivesByteBoundaries) {
  // Nulls straddling the 8-bit bitmap word edges (7/8, 15/16, 63/64).
  Table t("t", Schema{{"v", ValueType::kInt64}});
  for (int64_t i = 0; i < 70; ++i) {
    if (i == 0 || i == 7 || i == 8 || i == 15 || i == 16 || i == 63 ||
        i == 64 || i == 69) {
      t.AddRow({Value::Null()});
    } else {
      t.AddRow({i});
    }
  }
  const ColumnStore cols = ColumnStore::FromRows(t.schema(), t.rows());
  const ColumnVec& c = cols.column(0);
  EXPECT_EQ(c.rep(), ColumnVec::Rep::kInt64);  // nullable int stays typed
  EXPECT_TRUE(c.has_nulls());
  EXPECT_EQ(c.null_count(), 8u);
  for (size_t i = 0; i < 70; ++i) {
    EXPECT_EQ(c.IsNull(i), t.row(i)[0].is_null()) << i;
    EXPECT_TRUE(c.Get(i).Equals(t.row(i)[0])) << i;
  }
}

TEST(ColumnStore, TableCacheFollowsContentVersion) {
  Table t("t", Schema{{"v", ValueType::kInt64}});
  t.AddRow({int64_t{1}});
  EXPECT_EQ(t.columns().NumRows(), 1u);
  t.AddRow({int64_t{2}});  // bumps the content version
  EXPECT_EQ(t.columns().NumRows(), 2u);
  EXPECT_TRUE(t.columns().column(0).Get(1).Equals(Value(int64_t{2})));
}

// --------------------------------------------- operator-level identity

TEST(VecSelect, RowIdenticalAcrossDopAndCache) {
  const Table in = NumericTable("T", 6000, 7);
  const auto pred = ra::And(ra::Gt(ra::Add(Col("x"), ra::Mul(Col("y"), Lit(Value(2.0)))),
                                   Lit(Value(400.0))),
                            ra::IsNotNull(Col("x")));
  for (int dop : {1, 4}) {
    for (int cache : {0, 1}) {
      ra::PlanCache pc;
      auto off_ctx = MakeCtx(dop, nullptr, cache ? &pc : nullptr);
      auto oracle = ops::Select(in, pred, &off_ctx);
      ASSERT_TRUE(oracle.ok()) << oracle.status();

      VectorCounters vc;
      ra::PlanCache pc2;
      auto on_ctx = MakeCtx(dop, &vc, cache ? &pc2 : nullptr);
      auto vecres = ops::Select(in, pred, &on_ctx);
      ASSERT_TRUE(vecres.ok()) << vecres.status();
      ExpectRowsIdentical(*oracle, *vecres,
                          "select dop " + std::to_string(dop) + " cache " +
                              std::to_string(cache));
      EXPECT_GT(vc.vector_batches, 0u);
      EXPECT_EQ(vc.vector_fallbacks, 0u);
    }
  }
}

TEST(VecSelect, KleeneLogicAndNullTestsMatchOracle) {
  const Table in = NumericTable("T", 3000, 21);
  const std::vector<ra::ExprPtr> preds = {
      ra::Or(ra::IsNull(Col("x")), ra::Lt(Col("x"), Col("y"))),
      ra::Not(ra::Ge(Col("y"), Lit(Value(5.0)))),
      ra::Eq(ra::Binary(ra::BinaryOp::kMod, Col("x"), Lit(Value(int64_t{7}))),
             Lit(Value(int64_t{0}))),
      ra::Gt(ra::Neg(Col("x")), Lit(Value(int64_t{-100}))),
      ra::And(Col("x"), ra::Or(Col("y"), ra::IsNull(Col("y")))),
  };
  for (const auto& pred : preds) {
    auto off_ctx = MakeCtx(1, nullptr, nullptr);
    auto oracle = ops::Select(in, pred, &off_ctx);
    ASSERT_TRUE(oracle.ok()) << oracle.status();
    VectorCounters vc;
    auto on_ctx = MakeCtx(1, &vc, nullptr);
    auto vecres = ops::Select(in, pred, &on_ctx);
    ASSERT_TRUE(vecres.ok()) << vecres.status();
    ExpectRowsIdentical(*oracle, *vecres, "kleene select");
    EXPECT_GT(vc.vector_batches, 0u);
  }
}

TEST(VecProject, RowIdenticalWithPassthroughAndArithmetic) {
  Table in = NumericTable("T", 5000, 3);
  // A string column rides along to exercise typed pass-through.
  Table wide("T", Schema{{"id", ValueType::kInt64},
                         {"x", ValueType::kInt64},
                         {"y", ValueType::kDouble},
                         {"tag", ValueType::kString}});
  for (size_t i = 0; i < in.NumRows(); ++i) {
    auto row = in.row(i);
    row.push_back(i % 13 == 0 ? Value::Null()
                              : Value("t" + std::to_string(i % 5)));
    wide.AddRow(std::move(row));
  }
  const std::vector<ra::ops::ProjectItem> items = {
      ops::As(Col("id"), "id"),
      ops::As(ra::Div(Col("x"), Lit(Value(int64_t{3}))), "q"),
      ops::As(ra::Sub(Col("y"), Col("x")), "d"),
      ops::As(Col("tag"), "tag"),
  };
  for (int dop : {1, 4}) {
    auto off_ctx = MakeCtx(dop, nullptr, nullptr);
    auto oracle = ops::Project(wide, items, &off_ctx);
    ASSERT_TRUE(oracle.ok()) << oracle.status();
    VectorCounters vc;
    auto on_ctx = MakeCtx(dop, &vc, nullptr);
    auto vecres = ops::Project(wide, items, &on_ctx);
    ASSERT_TRUE(vecres.ok()) << vecres.status();
    ExpectRowsIdentical(*oracle, *vecres, "project dop " + std::to_string(dop));
    if (dop == 1) {
      EXPECT_GT(vc.vector_batches, 0u);
      EXPECT_EQ(vc.vector_fallbacks, 0u);
    }
  }
}

Table KeyedTable(const std::string& name, size_t n, int key_mod,
                 uint64_t seed, bool with_null_keys) {
  Xoshiro256 rng(seed);
  Table t(name, Schema{{"k", ValueType::kInt64}, {"w", ValueType::kDouble}});
  for (size_t i = 0; i < n; ++i) {
    Value k = with_null_keys && rng.NextBounded(23) == 0
                  ? Value::Null()
                  : Value(static_cast<int64_t>(rng.NextBounded(key_mod)));
    t.AddRow({k, rng.NextDouble()});
  }
  return t;
}

TEST(VecHashJoin, RowIdenticalAcrossDopAndCache) {
  const Table l = KeyedTable("L", 4000, 500, 5, /*with_null_keys=*/true);
  const Table r = KeyedTable("R", 1500, 500, 6, /*with_null_keys=*/true);
  for (int dop : {1, 4}) {
    for (int cache : {0, 1}) {
      ra::ops::JoinOptions o_off;
      o_off.cache_build = cache != 0;
      ra::PlanCache pc;
      auto off_ctx = MakeCtx(dop, nullptr, cache ? &pc : nullptr);
      o_off.ctx = &off_ctx;
      auto oracle = ops::JoinWithOptions(l, r, {{"k"}, {"k"}}, o_off);
      ASSERT_TRUE(oracle.ok()) << oracle.status();

      ra::ops::JoinOptions o_on = o_off;
      VectorCounters vc;
      ra::PlanCache pc2;
      auto on_ctx = MakeCtx(dop, &vc, cache ? &pc2 : nullptr);
      o_on.ctx = &on_ctx;
      // Run twice when caching so the second probe hits the cached build.
      auto vecres = ops::JoinWithOptions(l, r, {{"k"}, {"k"}}, o_on);
      ASSERT_TRUE(vecres.ok()) << vecres.status();
      if (cache) {
        vecres = ops::JoinWithOptions(l, r, {{"k"}, {"k"}}, o_on);
        ASSERT_TRUE(vecres.ok()) << vecres.status();
      }
      ExpectRowsIdentical(*oracle, *vecres,
                          "hash join dop " + std::to_string(dop) + " cache " +
                              std::to_string(cache));
      if (dop == 1) EXPECT_GT(vc.vector_batches, 0u);
    }
  }
}

TEST(VecGroupBy, RowIdenticalForAllAggregateKinds) {
  const Table in = KeyedTable("G", 5000, 120, 9, /*with_null_keys=*/false);
  const std::vector<ra::AggSpec> aggs = {
      {ra::AggKind::kCount, nullptr, "n"},
      {ra::AggKind::kSum, Col("w"), "s"},
      {ra::AggKind::kMin, Col("w"), "lo"},
      {ra::AggKind::kMax, Col("w"), "hi"},
      {ra::AggKind::kAvg, Col("w"), "a"},
      {ra::AggKind::kCount, Col("k"), "nk"},
  };
  for (int dop : {1, 4}) {
    auto off_ctx = MakeCtx(dop, nullptr, nullptr);
    auto oracle = ops::GroupBy(in, {"k"}, aggs, &off_ctx);
    ASSERT_TRUE(oracle.ok()) << oracle.status();
    VectorCounters vc;
    auto on_ctx = MakeCtx(dop, &vc, nullptr);
    auto vecres = ops::GroupBy(in, {"k"}, aggs, &on_ctx);
    ASSERT_TRUE(vecres.ok()) << vecres.status();
    ExpectRowsIdentical(*oracle, *vecres, "group-by dop " + std::to_string(dop));
    if (dop == 1) {
      EXPECT_GT(vc.vector_batches, 0u);
      EXPECT_EQ(vc.vector_fallbacks, 0u);
    }
  }
}

TEST(VecUnionByUpdate, FullOuterJoinMergeMatchesOracle) {
  const Table r = KeyedTable("Rk", 4000, 900, 11, /*with_null_keys=*/false);
  Table s("S", r.schema());
  Xoshiro256 rng(12);
  for (size_t i = 0; i < 2000; ++i) {
    s.AddRow({static_cast<int64_t>(rng.NextBounded(1200)), rng.NextDouble()});
  }
  core::UbuStats off_stats;
  auto oracle = core::UnionByUpdate(r, s, {"k"},
                                    core::UnionByUpdateImpl::kFullOuterJoin,
                                    core::OracleLike(), &off_stats);
  ASSERT_TRUE(oracle.ok()) << oracle.status();

  VectorCounters vc;
  auto ctx = MakeCtx(1, &vc, nullptr);
  core::UbuStats on_stats;
  auto vecres = core::UnionByUpdate(r, s, {"k"},
                                    core::UnionByUpdateImpl::kFullOuterJoin,
                                    core::OracleLike(), &on_stats, &ctx);
  ASSERT_TRUE(vecres.ok()) << vecres.status();
  ExpectRowsIdentical(*oracle, *vecres, "ubu full-outer-join");
  EXPECT_EQ(off_stats.updated, on_stats.updated);
  EXPECT_EQ(off_stats.inserted, on_stats.inserted);
  EXPECT_EQ(off_stats.changed, on_stats.changed);
  EXPECT_GT(vc.vector_batches, 0u);
}

// ------------------------------------------------------- boxed fallback

TEST(VecFallback, BoxedColumnFallsBackAndCounts) {
  Table in("T", Schema{{"v", ValueType::kString}});
  in.AddRow({Value(int64_t{1})});
  in.AddRow({Value("two")});  // mixed types → boxed column
  for (int i = 0; i < 100; ++i) in.AddRow({Value(int64_t{i})});
  const auto pred = ra::IsNotNull(Col("v"));
  // IS NOT NULL never reads values, so even a boxed column binds (the
  // bitmap is rep-independent); a value-reading predicate must not.
  VectorCounters vc;
  auto ctx = MakeCtx(1, &vc, nullptr);
  auto r1 = ops::Select(in, pred, &ctx);
  ASSERT_TRUE(r1.ok());
  EXPECT_GT(vc.vector_batches, 0u);

  VectorCounters vc2;
  auto ctx2 = MakeCtx(1, &vc2, nullptr);
  const auto value_pred = ra::Eq(Col("v"), Lit(Value(int64_t{1})));
  auto off_ctx = MakeCtx(1, nullptr, nullptr);
  auto oracle = ops::Select(in, value_pred, &off_ctx);
  ASSERT_TRUE(oracle.ok());
  auto vecres = ops::Select(in, value_pred, &ctx2);
  ASSERT_TRUE(vecres.ok());
  ExpectRowsIdentical(*oracle, *vecres, "boxed fallback select");
  EXPECT_EQ(vc2.vector_batches, 0u);
  EXPECT_GT(vc2.vector_fallbacks, 0u);
}

// ------------------------------------------------ algorithm differential

TEST(VecAlgorithms, VectorizeOnIsRowIdenticalToOffForAllTen) {
  graph::Graph er = graph::ErdosRenyi(120, 480, 11);
  graph::Graph dag = graph::RandomDag(120, 360, 11);
  graph::AttachRandomNodeData(&er, 31);  // labels for LP / KS
  graph::AttachRandomNodeData(&dag, 31);
  for (const auto& entry : algos::EvaluationSet(/*include_toposort=*/true)) {
    const graph::Graph& g = entry.needs_dag ? dag : er;
    for (int dop : {1, 4}) {
      algos::AlgoOptions off;
      off.fault_spec = "none";
      off.degree_of_parallelism = dop;
      off.vectorized = 0;
      off.profile.vectorized = false;  // HITS' mutual fixpoint reads it
      off.profile.parallel_min_rows = 1;
      algos::AlgoOptions on = off;
      on.vectorized = 1;
      on.profile.vectorized = true;
      auto c_off = MakeCatalog(g);
      auto r_off = entry.run(c_off, off);
      ASSERT_TRUE(r_off.ok()) << entry.abbrev << ": " << r_off.status();
      auto c_on = MakeCatalog(g);
      auto r_on = entry.run(c_on, on);
      ASSERT_TRUE(r_on.ok()) << entry.abbrev << ": " << r_on.status();
      ExpectRowsIdentical(r_off->table, r_on->table,
                          entry.abbrev + " dop " + std::to_string(dop));
    }
  }
}

TEST(VecAlgorithms, ComposesWithKernelsEitherWay) {
  const graph::Graph g = graph::ErdosRenyi(150, 600, 17);
  for (const char* abbrev : {"SSSP", "PR"}) {
    auto entry = algos::AlgoByAbbrev(abbrev);
    ASSERT_TRUE(entry.ok());
    algos::AlgoOptions base;
    base.fault_spec = "none";
    base.profile.parallel_min_rows = 1;
    Table reference("", Schema{});
    bool first = true;
    for (int kernels : {0, 1}) {
      for (int vec : {0, 1}) {
        algos::AlgoOptions opt = base;
        opt.csr_kernels = kernels;
        opt.profile.csr_kernels = kernels != 0;
        opt.vectorized = vec;
        opt.profile.vectorized = vec != 0;
        auto catalog = MakeCatalog(g);
        auto r = entry->run(catalog, opt);
        ASSERT_TRUE(r.ok()) << abbrev << ": " << r.status();
        if (first) {
          reference = r->table;
          first = false;
        } else {
          ExpectRowsIdentical(reference, r->table,
                              std::string(abbrev) + " kernels " +
                                  std::to_string(kernels) + " vec " +
                                  std::to_string(vec));
        }
      }
    }
  }
}

TEST(VecAlgorithms, CountersSurfaceThroughWithPlusStats) {
  const graph::Graph g = graph::ErdosRenyi(100, 400, 13);
  for (const char* abbrev : {"WCC", "SSSP", "PR"}) {
    auto entry = algos::AlgoByAbbrev(abbrev);
    ASSERT_TRUE(entry.ok());
    algos::AlgoOptions opt;
    opt.fault_spec = "none";
    opt.vectorized = 1;
    auto catalog = MakeCatalog(g);
    auto result = entry->run(catalog, opt);
    ASSERT_TRUE(result.ok()) << abbrev << ": " << result.status();
    EXPECT_GT(result->counters.vector_batches, 0u) << abbrev;

    algos::AlgoOptions off = opt;
    off.vectorized = 0;
    off.profile.vectorized = false;
    auto catalog2 = MakeCatalog(g);
    auto r2 = entry->run(catalog2, off);
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r2->counters.vector_batches, 0u) << abbrev;
    EXPECT_EQ(r2->counters.vector_fallbacks, 0u) << abbrev;
  }
}

// ------------------------------------------------------------ SQL surface

TEST(VecSql, VectorizeOptionParsesAndBinds) {
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) vectorize off)");
  ASSERT_TRUE(ast.ok()) << ast.status();
  EXPECT_EQ(ast->vectorized, 0);
  auto catalog = MakeCatalog(gpr::testing::TinyGraph());
  auto bound = sql::BindWithStatement(*ast, catalog);
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_EQ(bound->query.vectorized, 0);

  auto on = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) vectorize on kernels off)");
  ASSERT_TRUE(on.ok()) << on.status();
  EXPECT_EQ(on->vectorized, 1);
  EXPECT_EQ(on->csr_kernels, 0);
}

TEST(VecSql, DuplicateVectorizeOptionIsAParseError) {
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) vectorize on vectorize off)");
  ASSERT_FALSE(ast.ok());
  EXPECT_EQ(ast.status().code(), StatusCode::kParseError);
}

TEST(VecSql, MissingOnOffAfterVectorizeIsAParseError) {
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) vectorize sometimes)");
  ASSERT_FALSE(ast.ok());
  EXPECT_EQ(ast.status().code(), StatusCode::kParseError);
}

// ---------------------------------------------------------------- explain

TEST(VecExplain, KnobLineAndVectorMarkers) {
  auto catalog = MakeCatalog(gpr::testing::TinyGraph());
  core::WithPlusQuery q;
  q.rec_name = "R";
  q.rec_schema = Schema{{"F", ValueType::kInt64}, {"T", ValueType::kInt64}};
  q.init.push_back({core::ProjectOp(core::Scan("E"),
                                    {ops::As(Col("F"), "F"),
                                     ops::As(Col("T"), "T")}),
                    {}});
  q.recursive.push_back(
      {core::ProjectOp(
           core::SelectOp(
               core::JoinOp(core::Scan("R"), core::Scan("E"), {{"T"}, {"F"}}),
               ra::Lt(Col("R.F"), Lit(Value(int64_t{100})))),
           {ops::As(Col("R.F"), "F"), ops::As(Col("E.T"), "T")}),
       {}});
  q.mode = core::UnionMode::kUnionAll;

  std::string on = core::ExplainWithPlus(q, catalog, core::OracleLike());
  EXPECT_NE(on.find("vectorized: on"), std::string::npos) << on;
  EXPECT_NE(on.find("[vector]"), std::string::npos) << on;

  q.vectorized = 0;
  std::string off = core::ExplainWithPlus(q, catalog, core::OracleLike());
  EXPECT_NE(off.find("vectorized: off"), std::string::npos) << off;
  EXPECT_EQ(off.find("[vector]"), std::string::npos) << off;
}

}  // namespace
}  // namespace gpr
