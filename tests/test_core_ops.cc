// Unit and property tests for the paper's 4 operations: MM-join, MV-join
// (over every semiring), anti-join (all 3 physical implementations), and
// union-by-update (all 4 physical implementations).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <utility>

#include "core/aggregate_join.h"
#include "core/anti_join.h"
#include "core/engine_profile.h"
#include "core/semiring.h"
#include "core/union_by_update.h"
#include "util/rng.h"

namespace gpr::core {
namespace {

using ra::Schema;
using ra::Table;
using ra::Value;
using ra::ValueType;

Schema MatrixSchema() {
  return Schema{{"F", ValueType::kInt64},
                {"T", ValueType::kInt64},
                {"ew", ValueType::kDouble}};
}

Schema VectorSchema() {
  return Schema{{"ID", ValueType::kInt64}, {"vw", ValueType::kDouble}};
}

/// Random sparse matrix relation over an n×n index space.
Table RandomMatrix(const std::string& name, int n, int entries,
                   uint64_t seed, double lo = 0.0, double hi = 4.0) {
  Xoshiro256 rng(seed);
  Table t(name, MatrixSchema());
  std::set<std::pair<int64_t, int64_t>> seen;
  for (int i = 0; i < entries; ++i) {
    int64_t f = static_cast<int64_t>(rng.NextBounded(n));
    int64_t to = static_cast<int64_t>(rng.NextBounded(n));
    if (!seen.insert({f, to}).second) continue;
    t.AddRow({f, to, lo + rng.NextDouble() * (hi - lo)});
  }
  return t;
}

std::map<std::pair<int64_t, int64_t>, double> MatrixByKey(const Table& t) {
  std::map<std::pair<int64_t, int64_t>, double> out;
  for (const auto& row : t.rows()) {
    out[{row[0].ToInt64(), row[1].ToInt64()}] = row[2].ToDouble();
  }
  return out;
}

Table RandomVector(const std::string& name, int n, uint64_t seed) {
  Xoshiro256 rng(seed);
  Table t(name, VectorSchema());
  for (int64_t i = 0; i < n; ++i) {
    t.AddRow({i, rng.NextDouble() * 3.0});
  }
  return t;
}

// ----------------------------------------------- MM-join / MV-join

struct SemiringCase {
  const char* name;
  const Semiring* sr;
};

class AggregateJoinProperty : public ::testing::TestWithParam<SemiringCase> {
};

TEST_P(AggregateJoinProperty, MMJoinMatchesReference) {
  const Semiring& sr = *GetParam().sr;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Table a = RandomMatrix("A", 12, 40, seed);
    Table b = RandomMatrix("B", 12, 40, seed + 100);
    auto fast = MMJoin(a, b, sr);
    auto ref = MMJoinReference(a, b, sr);
    ASSERT_TRUE(fast.ok()) << fast.status();
    ASSERT_TRUE(ref.ok()) << ref.status();
    EXPECT_TRUE(fast->SameRowsAs(*ref))
        << "seed " << seed << " semiring " << sr.name << "\nfast:\n"
        << fast->ToString(0) << "ref:\n"
        << ref->ToString(0);
  }
}

TEST_P(AggregateJoinProperty, MVJoinMatchesReferenceBothOrientations) {
  const Semiring& sr = *GetParam().sr;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Table m = RandomMatrix("M", 10, 35, seed);
    Table v = RandomVector("V", 10, seed + 50);
    for (auto orient :
         {MVOrientation::kStandard, MVOrientation::kTransposed}) {
      auto fast = MVJoin(m, v, sr, orient);
      auto ref = MVJoinReference(m, v, sr, orient);
      ASSERT_TRUE(fast.ok()) << fast.status();
      ASSERT_TRUE(ref.ok()) << ref.status();
      EXPECT_TRUE(fast->SameRowsAs(*ref))
          << "seed " << seed << " semiring " << sr.name;
    }
  }
}

TEST_P(AggregateJoinProperty, MMJoinAgreesAcrossEngineProfiles) {
  const Semiring& sr = *GetParam().sr;
  Table a = RandomMatrix("A", 10, 30, 7);
  Table b = RandomMatrix("B", 10, 30, 8);
  auto oracle = MMJoin(a, b, sr, OracleLike());
  auto postgres = MMJoin(a, b, sr, PostgresLike());
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(postgres.ok());
  EXPECT_TRUE(oracle->SameRowsAs(*postgres));
}

INSTANTIATE_TEST_SUITE_P(
    Semirings, AggregateJoinProperty,
    ::testing::Values(SemiringCase{"plus_times", &PlusTimes()},
                      SemiringCase{"min_plus", &MinPlus()},
                      SemiringCase{"max_times", &MaxTimes()},
                      SemiringCase{"min_times", &MinTimes()},
                      SemiringCase{"or_and", &OrAnd()}),
    [](const ::testing::TestParamInfo<SemiringCase>& info) {
      return info.param.name;
    });

TEST(AggregateJoin, MMJoinAssociativityOnPlusTimes) {
  // (A·B)·C == A·(B·C) for the ring semiring.
  Table a = RandomMatrix("A", 8, 25, 1);
  Table b = RandomMatrix("B", 8, 25, 2);
  Table c = RandomMatrix("C", 8, 25, 3);
  auto ab = MMJoin(a, b, PlusTimes());
  ASSERT_TRUE(ab.ok());
  ab->set_name("AB");
  auto ab_c = MMJoin(*ab, c, PlusTimes());
  auto bc = MMJoin(b, c, PlusTimes());
  ASSERT_TRUE(bc.ok());
  bc->set_name("BC");
  auto a_bc = MMJoin(a, *bc, PlusTimes());
  ASSERT_TRUE(ab_c.ok());
  ASSERT_TRUE(a_bc.ok());
  auto left = MatrixByKey(*ab_c);
  auto right = MatrixByKey(*a_bc);
  ASSERT_EQ(left.size(), right.size());
  for (const auto& [key, val] : left) {
    EXPECT_NEAR(val, right.at(key), 1e-9);
  }
}

TEST(AggregateJoin, TransposeInvolution) {
  Table m = RandomMatrix("M", 9, 30, 11);
  auto t1 = Transpose(m);
  ASSERT_TRUE(t1.ok());
  auto t2 = Transpose(*t1);
  ASSERT_TRUE(t2.ok());
  EXPECT_TRUE(m.SameRowsAs(*t2));
}

TEST(AggregateJoin, EntrywiseSumUnionsSupports) {
  Table a("A", MatrixSchema());
  a.AddRow({int64_t{0}, int64_t{1}, 2.0});
  Table b("B", MatrixSchema());
  b.AddRow({int64_t{0}, int64_t{1}, 3.0});
  b.AddRow({int64_t{1}, int64_t{1}, 5.0});
  auto sum = MatrixEntrywiseSum(a, b, PlusTimes());
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum->NumRows(), 2u);
  for (const auto& row : sum->rows()) {
    EXPECT_EQ(row[2].AsDouble(), 5.0) << TupleToString(row);
  }
}

// ------------------------------------------------------- anti-join

class AntiJoinImpls : public ::testing::TestWithParam<AntiJoinImpl> {};

TEST_P(AntiJoinImpls, MatchesSetSemanticsOnCleanKeys) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Table r = RandomMatrix("R", 15, 40, seed);
    Table s = RandomMatrix("S", 15, 25, seed + 10);
    auto got = AntiJoin(r, s, {{"F"}, {"F"}}, GetParam());
    ASSERT_TRUE(got.ok()) << got.status();
    // Reference: rows of r whose F has no match among s.F.
    std::set<int64_t> s_keys;
    for (const auto& row : s.rows()) s_keys.insert(row[0].AsInt64());
    Table expected("R", r.schema());
    for (const auto& row : r.rows()) {
      if (!s_keys.count(row[0].AsInt64())) expected.AddRow(row);
    }
    EXPECT_TRUE(got->SameRowsAs(expected)) << AntiJoinImplName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllImpls, AntiJoinImpls,
    ::testing::ValuesIn(AllAntiJoinImpls()),
    [](const ::testing::TestParamInfo<AntiJoinImpl>& info) {
      switch (info.param) {
        case AntiJoinImpl::kNotExists: return std::string("not_exists");
        case AntiJoinImpl::kLeftOuterJoin: return std::string("left_outer");
        case AntiJoinImpl::kNotIn: return std::string("not_in");
      }
      return std::string("unknown");
    });

TEST(AntiJoin, NaiveLeftOuterMatchesRewrittenPlan) {
  // With the optimizer rewrite disabled, the genuine left-outer-join +
  // IS NULL materialization must still produce anti-join semantics.
  EngineProfile naive = OracleLike();
  naive.rewrites_left_outer_anti_join = false;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Table r = RandomMatrix("R", 12, 30, seed);
    Table s = RandomMatrix("S", 12, 18, seed + 20);
    auto rewritten =
        AntiJoin(r, s, {{"F"}, {"F"}}, AntiJoinImpl::kLeftOuterJoin);
    auto materialized = AntiJoin(r, s, {{"F"}, {"F"}},
                                 AntiJoinImpl::kLeftOuterJoin, naive);
    ASSERT_TRUE(rewritten.ok());
    ASSERT_TRUE(materialized.ok()) << materialized.status();
    EXPECT_TRUE(rewritten->SameRowsAs(*materialized)) << "seed " << seed;
  }
}

TEST(AntiJoin, NotInIsNullAware) {
  Table r("R", Schema{{"k", ValueType::kInt64}});
  r.AddRow({int64_t{1}});
  r.AddRow({Value::Null()});
  Table s("S", Schema{{"k", ValueType::kInt64}});
  s.AddRow({int64_t{2}});
  s.AddRow({Value::Null()});

  // not exists / left outer: NULL in S is irrelevant; r-NULL row survives.
  auto ne = AntiJoin(r, s, {{"k"}, {"k"}}, AntiJoinImpl::kNotExists);
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ(ne->NumRows(), 2u);
  auto lo = AntiJoin(r, s, {{"k"}, {"k"}}, AntiJoinImpl::kLeftOuterJoin);
  ASSERT_TRUE(lo.ok());
  EXPECT_EQ(lo->NumRows(), 2u);

  // not in: a NULL in S empties the result (x <> NULL is unknown).
  // Use the PostgreSQL-like profile — Oracle rewrites not-in (below).
  auto ni = AntiJoin(r, s, {{"k"}, {"k"}}, AntiJoinImpl::kNotIn,
                     PostgresLike());
  ASSERT_TRUE(ni.ok());
  EXPECT_EQ(ni->NumRows(), 0u);

  // Oracle rewrites not in to the internal anti-join (non-null keys
  // assumed), so it behaves like not exists.
  auto oracle = AntiJoin(r, s, {{"k"}, {"k"}}, AntiJoinImpl::kNotIn,
                         OracleLike());
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(oracle->NumRows(), 2u);
}

TEST(AntiJoin, NullLeftKeysNeverQualifyUnderNotIn) {
  Table r("R", Schema{{"k", ValueType::kInt64}});
  r.AddRow({Value::Null()});
  r.AddRow({int64_t{5}});
  Table s("S", Schema{{"k", ValueType::kInt64}});
  s.AddRow({int64_t{1}});
  auto ni = AntiJoin(r, s, {{"k"}, {"k"}}, AntiJoinImpl::kNotIn,
                     PostgresLike());
  ASSERT_TRUE(ni.ok());
  ASSERT_EQ(ni->NumRows(), 1u);  // only the non-null row
  EXPECT_EQ(ni->row(0)[0].AsInt64(), 5);
  // ...whereas not exists keeps the NULL row.
  auto ne = AntiJoin(r, s, {{"k"}, {"k"}}, AntiJoinImpl::kNotExists);
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ(ne->NumRows(), 2u);
}

// ------------------------------------------------- union-by-update

Table UbuTable(const std::string& name,
               std::vector<std::pair<int64_t, double>> rows) {
  Table t(name, VectorSchema());
  for (const auto& [id, w] : rows) t.AddRow({id, w});
  return t;
}

class UbuImpls : public ::testing::TestWithParam<UnionByUpdateImpl> {
 protected:
  EngineProfile ProfileFor(UnionByUpdateImpl impl) const {
    // update-from needs the PostgreSQL-like profile; merge needs
    // Oracle/DB2.
    return impl == UnionByUpdateImpl::kUpdateFrom ? PostgresLike()
                                                  : OracleLike();
  }
};

TEST_P(UbuImpls, CoveringSourceAgreesAcrossImpls) {
  // S covers every key of R, so even drop/alter replacement is valid.
  Table r = UbuTable("R", {{1, 1.0}, {2, 2.0}, {3, 3.0}});
  Table s = UbuTable("S", {{1, 10.0}, {2, 20.0}, {3, 30.0}, {4, 40.0}});
  auto got = UnionByUpdate(r, s, {"ID"}, GetParam(), ProfileFor(GetParam()));
  ASSERT_TRUE(got.ok()) << got.status();
  Table expected =
      UbuTable("R", {{1, 10.0}, {2, 20.0}, {3, 30.0}, {4, 40.0}});
  EXPECT_TRUE(got->SameRowsAs(expected))
      << UnionByUpdateImplName(GetParam()) << "\n"
      << got->ToString(0);
}

TEST_P(UbuImpls, EmptyKeyListReplacesWholesale) {
  Table r = UbuTable("R", {{1, 1.0}, {2, 2.0}});
  Table s = UbuTable("S", {{9, 9.0}});
  auto got = UnionByUpdate(r, s, {}, GetParam(), ProfileFor(GetParam()));
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_TRUE(got->SameRowsAs(s));
}

INSTANTIATE_TEST_SUITE_P(
    AllImpls, UbuImpls, ::testing::ValuesIn(AllUnionByUpdateImpls()),
    [](const ::testing::TestParamInfo<UnionByUpdateImpl>& info) {
      switch (info.param) {
        case UnionByUpdateImpl::kMerge: return std::string("merge");
        case UnionByUpdateImpl::kFullOuterJoin:
          return std::string("full_outer_join");
        case UnionByUpdateImpl::kUpdateFrom: return std::string("update_from");
        case UnionByUpdateImpl::kDropAlter: return std::string("drop_alter");
      }
      return std::string("unknown");
    });

TEST(UnionByUpdate, PartialSourceKeepsUnmatchedTargets) {
  Table r = UbuTable("R", {{1, 1.0}, {2, 2.0}, {3, 3.0}});
  Table s = UbuTable("S", {{2, 20.0}, {9, 90.0}});
  Table expected = UbuTable("R", {{1, 1.0}, {2, 20.0}, {3, 3.0}, {9, 90.0}});
  for (auto impl :
       {UnionByUpdateImpl::kMerge, UnionByUpdateImpl::kFullOuterJoin}) {
    auto got = UnionByUpdate(r, s, {"ID"}, impl);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_TRUE(got->SameRowsAs(expected)) << UnionByUpdateImplName(impl);
  }
  auto uf = UnionByUpdate(r, s, {"ID"}, UnionByUpdateImpl::kUpdateFrom,
                          PostgresLike());
  ASSERT_TRUE(uf.ok());
  EXPECT_TRUE(uf->SameRowsAs(expected));
}

TEST(UnionByUpdate, DropAlterRejectsNonCoveringSource) {
  Table r = UbuTable("R", {{1, 1.0}, {2, 2.0}});
  Table s = UbuTable("S", {{2, 20.0}});
  auto got = UnionByUpdate(r, s, {"ID"}, UnionByUpdateImpl::kDropAlter);
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(UnionByUpdate, MergeDetectsDuplicateSourceKeys) {
  Table r = UbuTable("R", {{1, 1.0}});
  Table s = UbuTable("S", {{1, 10.0}, {1, 11.0}});
  auto merge = UnionByUpdate(r, s, {"ID"}, UnionByUpdateImpl::kMerge);
  EXPECT_FALSE(merge.ok());
  EXPECT_EQ(merge.status().code(), StatusCode::kInvalidArgument);
  // update-from silently keeps the last write (the paper: "does not check
  // and report duplicates in the source table").
  auto uf = UnionByUpdate(r, s, {"ID"}, UnionByUpdateImpl::kUpdateFrom,
                          PostgresLike());
  ASSERT_TRUE(uf.ok()) << uf.status();
  EXPECT_EQ(uf->NumRows(), 1u);
  EXPECT_EQ(uf->row(0)[1].AsDouble(), 11.0);
}

TEST(UnionByUpdate, FeatureGatingByProfile) {
  Table r = UbuTable("R", {{1, 1.0}});
  Table s = UbuTable("S", {{1, 2.0}});
  // merge missing on PostgreSQL 9.4.
  auto merge_pg =
      UnionByUpdate(r, s, {"ID"}, UnionByUpdateImpl::kMerge, PostgresLike());
  EXPECT_EQ(merge_pg.status().code(), StatusCode::kNotSupported);
  // update-from missing on Oracle and DB2.
  auto uf_ora = UnionByUpdate(r, s, {"ID"}, UnionByUpdateImpl::kUpdateFrom,
                              OracleLike());
  EXPECT_EQ(uf_ora.status().code(), StatusCode::kNotSupported);
  auto uf_db2 = UnionByUpdate(r, s, {"ID"}, UnionByUpdateImpl::kUpdateFrom,
                              Db2Like());
  EXPECT_EQ(uf_db2.status().code(), StatusCode::kNotSupported);
}

TEST(UnionByUpdate, MultipleTargetsMayMatchOneSource) {
  // Keys are non-unique in R: both rows with ID=1 get updated.
  Table r("R", Schema{{"ID", ValueType::kInt64}, {"vw", ValueType::kDouble}});
  r.AddRow({int64_t{1}, 1.0});
  r.AddRow({int64_t{1}, 2.0});
  Table s = UbuTable("S", {{1, 9.0}});
  auto got = UnionByUpdate(r, s, {"ID"}, UnionByUpdateImpl::kMerge);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->NumRows(), 2u);
  EXPECT_EQ(got->row(0)[1].AsDouble(), 9.0);
  EXPECT_EQ(got->row(1)[1].AsDouble(), 9.0);
}

TEST(Semiring, LookupByName) {
  EXPECT_TRUE(SemiringByName("min_plus").ok());
  EXPECT_EQ(SemiringByName("min_plus")->add, ra::AggKind::kMin);
  EXPECT_FALSE(SemiringByName("bogus").ok());
}

}  // namespace
}  // namespace gpr::core
