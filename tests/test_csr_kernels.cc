// Differential tests for the CSR-backed semiring SpMV/SpMM kernels
// (ra/csr.h, docs/performance.md). The contract under test is strict: the
// kernel path must be *row-identical* — order included — to the generic
// hash-join + group-by path for every semiring, orientation, DOP, and
// cache setting, and the cached CSR layout must die with the matrix
// table's content version. The generic path is kept verbatim in
// core/aggregate_join.cc precisely so these comparisons stay meaningful.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "algos/common.h"
#include "algos/registry.h"
#include "core/aggregate_join.h"
#include "core/explain.h"
#include "core/plan.h"
#include "core/semiring.h"
#include "core/with_plus.h"
#include "graph/generators.h"
#include "ra/csr.h"
#include "ra/plan_cache.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "test_util.h"
#include "util/rng.h"

namespace gpr {
namespace {

namespace ops = ra::ops;
using core::MaxTimes;
using core::MinPlus;
using core::MinTimes;
using core::MMJoin;
using core::MVJoin;
using core::MVJoinReference;
using core::MVOrientation;
using core::OracleLike;
using core::OrAnd;
using core::PlusTimes;
using core::PostgresLike;
using core::Scan;
using core::Semiring;
using core::UnionMode;
using core::WithPlusQuery;
using gpr::testing::MakeCatalog;
using ra::KernelCounters;
using ra::Schema;
using ra::Table;
using ra::Value;
using ra::ValueType;

void ExpectRowsIdentical(const Table& a, const Table& b,
                         const std::string& label) {
  ASSERT_EQ(a.NumRows(), b.NumRows()) << label;
  for (size_t i = 0; i < a.NumRows(); ++i) {
    EXPECT_TRUE(a.row(i) == b.row(i)) << label << ": row " << i << " differs";
  }
}

Schema MatrixSchema() {
  return Schema{{"F", ValueType::kInt64},
                {"T", ValueType::kInt64},
                {"ew", ValueType::kDouble}};
}

/// Random sparse matrix with deduped (F, T) keys, the paper's convention.
Table RandomMatrix(const std::string& name, int n, int entries,
                   uint64_t seed) {
  Xoshiro256 rng(seed);
  Table t(name, MatrixSchema());
  std::set<std::pair<int64_t, int64_t>> seen;
  for (int i = 0; i < entries; ++i) {
    int64_t f = static_cast<int64_t>(rng.NextBounded(n));
    int64_t to = static_cast<int64_t>(rng.NextBounded(n));
    if (!seen.insert({f, to}).second) continue;
    t.AddRow({f, to, rng.NextDouble() * 4.0});
  }
  return t;
}

Table RandomVector(const std::string& name, int n, uint64_t seed) {
  Xoshiro256 rng(seed);
  Table t(name, Schema{{"ID", ValueType::kInt64}, {"vw", ValueType::kDouble}});
  for (int64_t i = 0; i < n; ++i) {
    t.AddRow({i, rng.NextDouble() * 3.0});
  }
  return t;
}

const std::vector<const Semiring*>& AllSemirings() {
  static const std::vector<const Semiring*> all = {
      &PlusTimes(), &MinPlus(), &MaxTimes(), &MinTimes(), &OrAnd()};
  return all;
}

// --------------------------------------------- operator-level identity

TEST(CsrKernels, MVJoinKernelRowIdenticalToGenericPath) {
  for (const Semiring* sr : AllSemirings()) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      Table m = RandomMatrix("M", 25, 120, seed);
      Table v = RandomVector("V", 25, seed + 50);
      for (auto orient :
           {MVOrientation::kStandard, MVOrientation::kTransposed}) {
        // No ctx → kernels off → the generic hash-join + group-by path.
        auto generic = MVJoin(m, v, *sr, orient);
        ASSERT_TRUE(generic.ok()) << generic.status();
        auto ref = MVJoinReference(m, v, *sr, orient);
        ASSERT_TRUE(ref.ok()) << ref.status();
        EXPECT_TRUE(generic->SameRowsAs(*ref)) << sr->name;
        for (int dop : {1, 4}) {
          KernelCounters kc;
          ra::EvalContext ctx;
          ctx.dop = dop;
          ctx.min_parallel_rows = 1;  // admit the tiny fixture
          ctx.kernels = &kc;
          auto kernel = MVJoin(m, v, *sr, orient, OracleLike(), {}, {},
                               &ctx);
          ASSERT_TRUE(kernel.ok()) << kernel.status();
          EXPECT_EQ(kc.kernel_hits, 1u) << sr->name;
          EXPECT_EQ(kc.kernel_fallbacks, 0u) << sr->name;
          ExpectRowsIdentical(
              *generic, *kernel,
              std::string(sr->name) + " seed " + std::to_string(seed) +
                  " dop " + std::to_string(dop));
        }
      }
    }
  }
}

TEST(CsrKernels, MMJoinKernelRowIdenticalToGenericPath) {
  for (const Semiring* sr : AllSemirings()) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      Table a = RandomMatrix("A", 15, 70, seed);
      Table b = RandomMatrix("B", 15, 70, seed + 100);
      auto generic = MMJoin(a, b, *sr);
      ASSERT_TRUE(generic.ok()) << generic.status();
      KernelCounters kc;
      ra::EvalContext ctx;
      ctx.kernels = &kc;
      auto kernel = MMJoin(a, b, *sr, OracleLike(), {}, {}, &ctx);
      ASSERT_TRUE(kernel.ok()) << kernel.status();
      EXPECT_EQ(kc.kernel_hits, 1u) << sr->name;
      ExpectRowsIdentical(*generic, *kernel,
                          std::string(sr->name) + " seed " +
                              std::to_string(seed));
    }
  }
}

TEST(CsrKernels, MergeJoinProfileFallsBackToGenericPath) {
  // PostgresLike picks merge joins on stat-less inputs; the kernel cannot
  // replay merge-join match order and must route to the generic path.
  Table m = RandomMatrix("M", 10, 40, 3);
  Table v = RandomVector("V", 10, 4);
  KernelCounters kc;
  ra::EvalContext ctx;
  ctx.kernels = &kc;
  auto merge = MVJoin(m, v, PlusTimes(), MVOrientation::kStandard,
                      PostgresLike(), {}, {}, &ctx);
  ASSERT_TRUE(merge.ok()) << merge.status();
  EXPECT_EQ(kc.kernel_hits, 0u);
  EXPECT_EQ(kc.kernel_fallbacks, 1u);
  auto plain = MVJoin(m, v, PlusTimes(), MVOrientation::kStandard,
                      PostgresLike());
  ASSERT_TRUE(plain.ok());
  ExpectRowsIdentical(*plain, *merge, "merge-join fallback");
}

TEST(CsrKernels, MixedAndNullValuesMatchGenericPath) {
  // Mixed int64/double weights force the boxed kernel mode; NULL weights,
  // NULL join keys, and NULL vector ids exercise the skip/keep rules the
  // generic Accumulator + hash-join path defines.
  Table m("M", MatrixSchema());
  m.AddRow({int64_t{0}, int64_t{1}, int64_t{2}});
  m.AddRow({int64_t{0}, int64_t{2}, 1.5});
  m.AddRow({int64_t{1}, Value(), 3.0});          // NULL join key (T)
  m.AddRow({int64_t{1}, int64_t{2}, Value()});   // NULL weight
  m.AddRow({int64_t{2}, int64_t{0}, int64_t{4}});
  m.AddRow({int64_t{2}, int64_t{1}, 0.25});
  Table v("V", Schema{{"ID", ValueType::kInt64}, {"vw", ValueType::kDouble}});
  v.AddRow({int64_t{0}, 1.0});
  v.AddRow({int64_t{1}, int64_t{2}});
  v.AddRow({Value(), 9.0});                      // NULL id never matches
  v.AddRow({int64_t{2}, Value()});               // NULL vector weight
  for (const Semiring* sr : AllSemirings()) {
    for (auto orient :
         {MVOrientation::kStandard, MVOrientation::kTransposed}) {
      auto generic = MVJoin(m, v, *sr, orient);
      ASSERT_TRUE(generic.ok()) << generic.status();
      KernelCounters kc;
      ra::EvalContext ctx;
      ctx.kernels = &kc;
      auto kernel = MVJoin(m, v, *sr, orient, OracleLike(), {}, {}, &ctx);
      ASSERT_TRUE(kernel.ok()) << kernel.status();
      EXPECT_EQ(kc.kernel_hits, 1u);
      ExpectRowsIdentical(*generic, *kernel,
                          std::string("nulls/") + sr->name);
    }
  }
}

// --------------------------------------------------- cache & versioning

TEST(CsrCache, CachedLayoutIsReusedAndDiesWithTheTableVersion) {
  Table m = RandomMatrix("E_csr", 20, 90, 7);
  Table v = RandomVector("Vec", 20, 8);
  ra::PlanCache cache;
  KernelCounters kc;
  ra::EvalContext ctx;
  ctx.cache = &cache;
  ctx.kernels = &kc;
  auto run = [&] {
    return MVJoin(m, v, MinTimes(), MVOrientation::kTransposed, OracleLike(),
                  {}, {}, &ctx, /*m_stable=*/true);
  };
  auto r1 = run();
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_EQ(kc.csr_builds, 1u);
  auto r2 = run();
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(kc.csr_builds, 1u) << "second call must hit the cached CSR";
  EXPECT_GE(cache.stats().hits, 1u);
  ExpectRowsIdentical(*r1, *r2, "cached CSR rerun");

  // Mutating the matrix bumps its content version: the cached layout is
  // unreachable and the kernel rebuilds against the new contents.
  m.AddRow({int64_t{19}, int64_t{0}, 0.125});
  auto r3 = run();
  ASSERT_TRUE(r3.ok()) << r3.status();
  EXPECT_EQ(kc.csr_builds, 2u) << "version bump must invalidate the CSR";
  auto fresh = MVJoin(m, v, MinTimes(), MVOrientation::kTransposed);
  ASSERT_TRUE(fresh.ok());
  ExpectRowsIdentical(*fresh, *r3, "post-mutation CSR result");
}

TEST(CsrCache, UnnamedOrUnstableMatrixBuildsWithoutCaching) {
  Table m = RandomMatrix("", 12, 40, 9);  // unnamed → never cached
  Table v = RandomVector("Vec", 12, 10);
  ra::PlanCache cache;
  KernelCounters kc;
  ra::EvalContext ctx;
  ctx.cache = &cache;
  ctx.kernels = &kc;
  for (int i = 0; i < 2; ++i) {
    auto r = MVJoin(m, v, PlusTimes(), MVOrientation::kStandard,
                    OracleLike(), {}, {}, &ctx, /*m_stable=*/true);
    ASSERT_TRUE(r.ok()) << r.status();
  }
  EXPECT_EQ(kc.csr_builds, 2u);
  EXPECT_EQ(cache.stats().bytes_live, 0u);
}

// ------------------------------------------------ algorithm differential

TEST(CsrAlgorithms, KernelsOnIsRowIdenticalToKernelsOff) {
  const graph::Graph g = graph::ErdosRenyi(200, 800, 11);
  for (const char* abbrev : {"BFS", "WCC", "SSSP", "PR", "HITS"}) {
    auto entry = algos::AlgoByAbbrev(abbrev);
    ASSERT_TRUE(entry.ok()) << entry.status();
    for (int dop : {1, 4}) {
      for (int cache : {0, 1}) {
        algos::AlgoOptions off;
        off.fault_spec = "none";
        off.degree_of_parallelism = dop;
        off.plan_cache = cache;
        off.csr_kernels = 0;
        off.profile.csr_kernels = false;  // HITS' mutual fixpoint reads it
        off.profile.parallel_min_rows = 1;
        algos::AlgoOptions on = off;
        on.csr_kernels = 1;
        on.profile.csr_kernels = true;
        auto c_off = MakeCatalog(g);
        auto r_off = entry->run(c_off, off);
        ASSERT_TRUE(r_off.ok()) << abbrev << ": " << r_off.status();
        auto c_on = MakeCatalog(g);
        auto r_on = entry->run(c_on, on);
        ASSERT_TRUE(r_on.ok()) << abbrev << ": " << r_on.status();
        ExpectRowsIdentical(r_off->table, r_on->table,
                            std::string(abbrev) + " dop " +
                                std::to_string(dop) + " cache " +
                                std::to_string(cache));
      }
    }
  }
}

TEST(CsrAlgorithms, KernelCountersSurfaceThroughWithPlusStats) {
  const graph::Graph g = graph::ErdosRenyi(100, 400, 13);
  for (const char* abbrev : {"WCC", "SSSP", "PR"}) {
    auto entry = algos::AlgoByAbbrev(abbrev);
    ASSERT_TRUE(entry.ok());
    algos::AlgoOptions opt;
    opt.fault_spec = "none";
    opt.csr_kernels = 1;
    auto catalog = MakeCatalog(g);
    auto result = entry->run(catalog, opt);
    ASSERT_TRUE(result.ok()) << abbrev << ": " << result.status();
    EXPECT_GT(result->counters.kernel_hits, 0u) << abbrev;
    EXPECT_GT(result->counters.csr_builds, 0u) << abbrev;

    algos::AlgoOptions off = opt;
    off.csr_kernels = 0;
    off.profile.csr_kernels = false;
    auto catalog2 = MakeCatalog(g);
    auto r2 = entry->run(catalog2, off);
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r2->counters.kernel_hits, 0u) << abbrev;
    EXPECT_EQ(r2->counters.csr_builds, 0u) << abbrev;
  }
}

// ------------------------------------------------------------ SQL surface

TEST(CsrSql, KernelsOptionParsesAndBinds) {
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) kernels off)");
  ASSERT_TRUE(ast.ok()) << ast.status();
  EXPECT_EQ(ast->csr_kernels, 0);
  auto catalog = MakeCatalog(gpr::testing::TinyGraph());
  auto bound = sql::BindWithStatement(*ast, catalog);
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_EQ(bound->query.csr_kernels, 0);

  auto on = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) kernels on cache off)");
  ASSERT_TRUE(on.ok()) << on.status();
  EXPECT_EQ(on->csr_kernels, 1);
  EXPECT_EQ(on->plan_cache, 0);
}

TEST(CsrSql, DuplicateKernelsOptionIsAParseError) {
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) kernels on kernels off)");
  ASSERT_FALSE(ast.ok());
  EXPECT_EQ(ast.status().code(), StatusCode::kParseError);
}

TEST(CsrSql, MissingOnOffAfterKernelsIsAParseError) {
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) kernels maybe)");
  ASSERT_FALSE(ast.ok());
  EXPECT_EQ(ast.status().code(), StatusCode::kParseError);
}

// ---------------------------------------------------------------- explain

TEST(CsrExplain, KnobLineAndKernelMarker) {
  auto catalog = MakeCatalog(gpr::testing::TinyGraph());
  WithPlusQuery q;
  q.rec_name = "Rk";
  q.rec_schema =
      Schema{{"ID", ValueType::kInt64}, {"vw", ValueType::kDouble}};
  q.init.push_back(
      {core::ProjectOp(Scan("V"), {ops::As(ra::Col("ID"), "ID"),
                                   ops::As(ra::Col("vw"), "vw")}),
       {}});
  q.recursive.push_back(
      {core::MVJoinOp(Scan("E"), Scan("Rk"), MinTimes(),
                      MVOrientation::kTransposed),
       {}});
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {"ID"};

  std::string on = core::ExplainWithPlus(q, catalog, OracleLike());
  EXPECT_NE(on.find("csr kernels: on"), std::string::npos) << on;
  EXPECT_NE(on.find("[csr kernel]"), std::string::npos) << on;

  q.csr_kernels = 0;
  std::string off = core::ExplainWithPlus(q, catalog, OracleLike());
  EXPECT_NE(off.find("csr kernels: off"), std::string::npos) << off;
  EXPECT_EQ(off.find("[csr kernel]"), std::string::npos) << off;
}

}  // namespace
}  // namespace gpr
