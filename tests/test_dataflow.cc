// Tests for the plan-IR dataflow framework (analysis/dataflow.h): the
// graph construction with iteration back-edges, the generic worklist
// solver (including widening through the back-edge), the four fact
// analyses and their PlanFacts output, hoist-set settlement, the
// facts-driven rewrites, the executor's consultation counters, the
// explain audit of hoist markers — and the ground-truth property that
// every seed algorithm is row-identical with facts on vs. off across
// DOP and plan-cache settings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "algos/common.h"
#include "algos/registry.h"
#include "analysis/dataflow.h"
#include "analysis/plan_facts.h"
#include "core/explain.h"
#include "core/plan.h"
#include "core/with_plus.h"
#include "ra/table.h"
#include "test_util.h"

namespace gpr {
namespace {

namespace ops = ra::ops;
using analysis::ApplyFactsRewrites;
using analysis::ComputeFacts;
using analysis::ComputeHoistSets;
using analysis::ComputeQueryFacts;
using analysis::DataflowDirection;
using analysis::DataflowGraph;
using analysis::DataflowQuery;
using analysis::DfNode;
using analysis::FactsOptions;
using analysis::HoistSets;
using analysis::OperatorFacts;
using analysis::PlanFacts;
using analysis::PredicateVerdict;
using analysis::RelationFacts;
using analysis::RewriteStats;
using analysis::RunDataflow;
using analysis::ToDataflowQuery;
using core::ExecuteWithPlus;
using core::PlanKind;
using core::Scan;
using core::UnionMode;
using core::WithPlusQuery;
using gpr::testing::MakeCatalog;
using gpr::testing::TinyDag;
using gpr::testing::TinyGraph;
using ra::Col;
using ra::Lit;
using ra::Schema;
using ra::ValueType;

/// The canonical transitive-closure query (Fig 1, union distinct).
WithPlusQuery Tc() {
  WithPlusQuery q;
  q.rec_name = "TCx";
  q.rec_schema = Schema{{"F", ValueType::kInt64}, {"T", ValueType::kInt64}};
  q.init.push_back(
      {core::ProjectOp(Scan("E"),
                       {ops::As(Col("F"), "F"), ops::As(Col("T"), "T")}),
       {}});
  q.recursive.push_back(
      {core::ProjectOp(core::JoinOp(Scan("TCx"), Scan("E"), {{"T"}, {"F"}}),
                       {ops::As(Col("TCx.F"), "F"),
                        ops::As(Col("E.T"), "T")}),
       {}});
  q.mode = UnionMode::kUnionDistinct;
  return q;
}

/// Reachability with a two-deep invariant computed-by chain and an
/// invariant select in the delta: Heavy joins base tables, Heavy2 joins
/// Heavy with a base table, and the delta filters Heavy2 behind the
/// varying join with R. Exercises dependency-ordered def settlement and
/// subtree hoisting.
WithPlusQuery InvariantChainQuery() {
  WithPlusQuery q;
  q.rec_name = "R";
  q.rec_schema = Schema{{"ID", ValueType::kInt64}};
  q.init.push_back(
      {core::ProjectOp(Scan("V"), {ops::As(Col("ID"), "ID")}), {}});
  core::Subquery sq;
  sq.computed_by.push_back(
      {"Heavy",
       core::ProjectOp(
           core::JoinOp(Scan("E"), Scan("V"), {{"T"}, {"ID"}}),
           {ops::As(Col("E.F"), "F"), ops::As(Col("E.T"), "T")})});
  sq.computed_by.push_back(
      {"Heavy2",
       core::ProjectOp(
           core::JoinOp(Scan("Heavy"), Scan("V"), {{"T"}, {"ID"}}),
           {ops::As(Col("Heavy.F"), "F"), ops::As(Col("Heavy.T"), "T")})});
  sq.plan = core::ProjectOp(
      core::JoinOp(Scan("R"),
                   core::SelectOp(Scan("Heavy2"),
                                  ra::Lt(Col("F"), Lit(2))),
                   {{"ID"}, {"F"}}),
      {ops::As(Col("Heavy2.T"), "ID")});
  q.recursive.push_back(sq);
  q.mode = UnionMode::kUnionDistinct;
  return q;
}

size_t CountOf(const std::string& hay, const std::string& needle) {
  size_t n = 0;
  for (size_t at = hay.find(needle); at != std::string::npos;
       at = hay.find(needle, at + needle.size())) {
    ++n;
  }
  return n;
}

/// Rows of a table rendered and sorted, for order-insensitive equality.
std::vector<std::string> SortedRows(const ra::Table& t) {
  std::vector<std::string> out;
  for (const auto& row : t.rows()) {
    std::string s;
    for (const auto& v : row) {
      s += v.ToString();
      s += "|";
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t CountKind(const core::PlanPtr& p, PlanKind k) {
  if (p == nullptr) return 0;
  size_t n = p->kind == k ? 1 : 0;
  for (const auto& c : p->children) n += CountKind(c, k);
  return n;
}

// ---------------------------------------------------------------------
// Graph construction.
// ---------------------------------------------------------------------

TEST(DataflowGraph, BuildsRelationNodesRolesAndBackEdge) {
  auto catalog = MakeCatalog(TinyGraph());
  DataflowQuery dfq = ToDataflowQuery(Tc());
  ASSERT_EQ(dfq.init.size(), 1u);
  ASSERT_EQ(dfq.blocks.size(), 1u);
  DataflowGraph g = DataflowGraph::Build(dfq, &catalog);

  const size_t rel = g.RelationIndex("TCx");
  ASSERT_NE(rel, DataflowGraph::npos);
  EXPECT_TRUE(g.node(rel).back_edge_target);
  EXPECT_EQ(g.node(rel).plan, nullptr);

  const size_t init_root = g.IndexOf(dfq.init[0].get());
  ASSERT_NE(init_root, DataflowGraph::npos);
  EXPECT_EQ(g.node(init_root).role, DfNode::Role::kInitRoot);

  const size_t delta_root = g.IndexOf(dfq.blocks[0].delta.get());
  ASSERT_NE(delta_root, DataflowGraph::npos);
  EXPECT_EQ(g.node(delta_root).role, DfNode::Role::kDeltaRoot);
  EXPECT_TRUE(g.node(delta_root).schema_known);
  EXPECT_EQ(g.node(delta_root).schema.NumColumns(), 2u);

  // Both subquery roots feed the relation pseudo-node; the delta root's
  // edge is the with+ iteration back-edge.
  const auto& rel_inputs = g.node(rel).inputs;
  EXPECT_NE(std::find(rel_inputs.begin(), rel_inputs.end(), init_root),
            rel_inputs.end());
  EXPECT_NE(std::find(rel_inputs.begin(), rel_inputs.end(), delta_root),
            rel_inputs.end());
  // ... and the pseudo-node feeds the Scan(TCx) inside the delta, closing
  // the cycle.
  EXPECT_FALSE(g.node(rel).outputs.empty());
}

// ---------------------------------------------------------------------
// The generic solver: a toy "depth" analysis that would climb forever
// through the iteration back-edge; widening must bound it.
// ---------------------------------------------------------------------

struct DepthAnalysis {
  using Fact = size_t;
  static constexpr size_t kTop = size_t{1} << 20;

  DataflowDirection direction() const { return DataflowDirection::kForward; }
  Fact Boundary(const DataflowGraph&, size_t) { return 0; }
  Fact Transfer(const DataflowGraph& g, size_t n,
                const std::vector<Fact>& all) {
    size_t m = 0;
    for (size_t i : g.node(n).inputs) m = std::max(m, all[i]);
    return std::min(m + 1, kTop);
  }
  bool Join(Fact* into, const Fact& from) {
    if (from > *into) {
      *into = from;
      return true;
    }
    return false;
  }
  void Widen(Fact* f) { *f = kTop; }
};

TEST(DataflowEngine, WideningBoundsClimbThroughTheBackEdge) {
  auto catalog = MakeCatalog(TinyGraph());
  DataflowQuery dfq = ToDataflowQuery(Tc());
  DataflowGraph g = DataflowGraph::Build(dfq, &catalog);

  DepthAnalysis a;
  std::vector<size_t> depth = RunDataflow(g, a);  // must terminate

  // Nodes on the iteration cycle are widened to top; the init subtree is
  // acyclic and keeps its small exact depth.
  EXPECT_EQ(depth[g.RelationIndex("TCx")], DepthAnalysis::kTop);
  EXPECT_EQ(depth[g.IndexOf(dfq.blocks[0].delta.get())],
            DepthAnalysis::kTop);
  EXPECT_LE(depth[g.IndexOf(dfq.init[0].get())], 4u);
}

// ---------------------------------------------------------------------
// The fact analyses.
// ---------------------------------------------------------------------

TEST(DataflowFacts, KeysIntervalsAndVerdicts) {
  auto catalog = MakeCatalog(TinyGraph());
  auto q = Tc();
  // init[0]: distinct(project(select(E, F >= 2))).
  core::PlanPtr sel = core::SelectOp(Scan("E"), ra::Ge(Col("F"), Lit(2)));
  core::PlanPtr dist = core::DistinctOp(core::ProjectOp(
      sel, {ops::As(Col("F"), "F"), ops::As(Col("T"), "T")}));
  q.init[0].plan = dist;
  // init[1]: a provably-false branch.
  core::PlanPtr dead = core::SelectOp(
      core::ProjectOp(Scan("E"),
                      {ops::As(Col("F"), "F"), ops::As(Col("T"), "T")}),
      ra::Lt(Lit(5), Lit(3)));
  q.init.push_back({dead, {}});

  FactsOptions fo;
  fo.scan_base_values = true;
  PlanFacts facts = ComputeQueryFacts(q, catalog, fo);

  // Interval propagation: TinyGraph has F in [0, 4]; the predicate meet
  // refines the selection's output to [2, 4].
  const OperatorFacts* fs = facts.Get(sel.get());
  ASSERT_NE(fs, nullptr);
  ASSERT_TRUE(fs->schema_known);
  ASSERT_GE(fs->intervals.size(), 1u);
  EXPECT_TRUE(fs->intervals[0].has_lo);
  EXPECT_EQ(fs->intervals[0].lo, 2.0);
  EXPECT_TRUE(fs->intervals[0].has_hi);
  EXPECT_EQ(fs->intervals[0].hi, 4.0);

  // Key inference: distinct output is duplicate-free.
  const OperatorFacts* fd = facts.Get(dist.get());
  ASSERT_NE(fd, nullptr);
  EXPECT_TRUE(fd->dup_free);

  // Predicate verdict + cardinality: the literal-false selection emits no
  // rows, proven without looking at any data.
  const OperatorFacts* ff = facts.Get(dead.get());
  ASSERT_NE(ff, nullptr);
  EXPECT_EQ(ff->predicate, PredicateVerdict::kAlwaysFalse);
  ASSERT_TRUE(ff->rows.known);
  EXPECT_EQ(ff->rows.ToString(), "=0");
}

TEST(DataflowFacts, CardinalityOfScalarAggregates) {
  auto catalog = MakeCatalog(TinyGraph());
  WithPlusQuery q;
  q.rec_name = "Rc";
  q.rec_schema = Schema{{"c", ValueType::kInt64}};
  q.init.push_back(
      {core::ProjectOp(Scan("V"), {ops::As(Col("ID"), "c")}), {}});
  core::PlanPtr gb =
      core::GroupByOp(Scan("Rc"), {}, {ra::CountStar("n")});
  q.recursive.push_back(
      {core::ProjectOp(gb, {ops::As(Col("n"), "c")}), {}});
  q.mode = UnionMode::kUnionDistinct;

  PlanFacts facts = ComputeQueryFacts(q, catalog, FactsOptions{});
  const OperatorFacts* f = facts.Get(gb.get());
  ASSERT_NE(f, nullptr);
  ASSERT_TRUE(f->rows.known);
  EXPECT_EQ(f->rows.ToString(), "=1");  // scalar aggregate: exactly 1 row
}

TEST(DataflowFacts, BackwardLivenessFindsDeadDefinitionColumns) {
  auto catalog = MakeCatalog(TinyGraph());
  auto q = Tc();
  core::Subquery sq;
  sq.computed_by.push_back(
      {"Dd", core::ProjectOp(
                 core::JoinOp(Scan("TCx"), Scan("E"), {{"T"}, {"F"}}),
                 {ops::As(Col("TCx.F"), "F"), ops::As(Col("E.T"), "T"),
                  ops::As(Col("E.ew"), "w")})});
  sq.plan = core::ProjectOp(
      Scan("Dd"), {ops::As(Col("F"), "F"), ops::As(Col("T"), "T")});
  q.recursive[0] = sq;

  PlanFacts facts = ComputeQueryFacts(q, catalog, FactsOptions{});
  const RelationFacts* rf = facts.GetRelation("Dd");
  ASSERT_NE(rf, nullptr);
  ASSERT_EQ(rf->dead_columns.size(), 1u);
  EXPECT_EQ(rf->dead_columns[0], 2u);  // `w` is never read
}

TEST(DataflowFacts, HoistSetsSettleDependentDefChains) {
  auto catalog = MakeCatalog(TinyGraph());
  DataflowQuery dfq = ToDataflowQuery(InvariantChainQuery());
  FactsOptions fo;
  fo.scan_base_values = true;
  PlanFacts facts = ComputeFacts(dfq, catalog, fo);
  HoistSets hs = ComputeHoistSets(dfq, facts);

  // Heavy2 is invariant only because Heavy settles first — the chain must
  // settle in dependency order, not syntactic order alone.
  ASSERT_EQ(hs.invariant_defs.size(), 2u)
      << "settled: " << (hs.invariant_defs.empty()
                             ? std::string("<none>")
                             : hs.invariant_defs[0]);
  EXPECT_EQ(hs.invariant_defs[0], "Heavy");
  EXPECT_EQ(hs.invariant_defs[1], "Heavy2");

  // The delta's invariant select over Heavy2 is a hoist root.
  const auto it = hs.hoist_roots.find(dfq.blocks[0].delta.get());
  ASSERT_NE(it, hs.hoist_roots.end());
  ASSERT_EQ(it->second.size(), 1u);
  EXPECT_EQ(it->second[0]->kind, PlanKind::kSelect);
}

// ---------------------------------------------------------------------
// Facts-driven rewrites.
// ---------------------------------------------------------------------

TEST(DataflowRewrites, RemovesProvablyTrueSelects) {
  auto catalog = MakeCatalog(TinyGraph());
  auto q = Tc();
  q.recursive[0].plan = core::ProjectOp(
      core::JoinOp(Scan("TCx"),
                   core::SelectOp(Scan("E"), ra::Ge(Lit(3), Lit(2))),
                   {{"T"}, {"F"}}),
      {ops::As(Col("TCx.F"), "F"), ops::As(Col("E.T"), "T")});

  DataflowQuery dfq = ToDataflowQuery(q);
  PlanFacts facts = ComputeFacts(dfq, catalog, FactsOptions{});
  RewriteStats stats =
      ApplyFactsRewrites(&dfq, facts, /*allow_pushdown=*/true);
  EXPECT_EQ(stats.removed_selects, 1u);
  EXPECT_EQ(CountKind(dfq.blocks[0].delta, PlanKind::kSelect), 0u);
}

TEST(DataflowRewrites, NarrowsInvariantCompositeJoinInputs) {
  // The delta joins R against an invariant E⋈V subtree whose consumers
  // only observe E.F (join key) and E.T — ew / vw are provably dead and
  // must be pruned by the pushdown.
  auto catalog = MakeCatalog(TinyGraph());
  WithPlusQuery q;
  q.rec_name = "R";
  q.rec_schema = Schema{{"ID", ValueType::kInt64}};
  q.init.push_back(
      {core::ProjectOp(Scan("V"), {ops::As(Col("ID"), "ID")}), {}});
  q.recursive.push_back(
      {core::ProjectOp(
           core::JoinOp(
               Scan("R"),
               core::JoinOp(Scan("E"), Scan("V"), {{"T"}, {"ID"}}),
               {{"ID"}, {"F"}}),
           {ops::As(Col("E.T"), "ID")}),
       {}});
  q.mode = UnionMode::kUnionDistinct;

  DataflowQuery dfq = ToDataflowQuery(q);
  FactsOptions fo;
  fo.scan_base_values = true;
  PlanFacts facts = ComputeFacts(dfq, catalog, fo);
  RewriteStats stats =
      ApplyFactsRewrites(&dfq, facts, /*allow_pushdown=*/true);
  EXPECT_GE(stats.pruned_columns, 1u);

  // End to end: the executor reports the pruning and the result matches
  // the facts-off run.
  auto on = ExecuteWithPlus(q, catalog, core::OracleLike());
  ASSERT_TRUE(on.ok()) << on.status();
  EXPECT_GE(on->counters.facts_pruned_columns, 1u);

  auto profile = core::OracleLike();
  profile.plan_facts = false;
  auto off = ExecuteWithPlus(q, catalog, profile);
  ASSERT_TRUE(off.ok()) << off.status();
  EXPECT_EQ(off->counters.facts_pruned_columns, 0u);
  EXPECT_EQ(SortedRows(on->table), SortedRows(off->table));
}

// ---------------------------------------------------------------------
// Executor consultation: the facts counters fire exactly when facts are
// on, and never change results.
// ---------------------------------------------------------------------

TEST(DataflowExecutor, DeadSelectSkipCountsAndPreservesRows) {
  auto catalog = MakeCatalog(TinyGraph());
  auto q = Tc();
  // Append a provably-dead union branch to the delta. It references the
  // recursive relation, so it is NOT loop-invariant (hoisting would
  // otherwise move it out of the loop) — with facts on the executor skips
  // its whole subtree every iteration instead of evaluating the join.
  q.recursive[0].plan = core::UnionAllOp(
      q.recursive[0].plan,
      core::SelectOp(
          core::ProjectOp(
              core::JoinOp(Scan("TCx"), Scan("E"), {{"T"}, {"F"}}),
              {ops::As(Col("TCx.F"), "F"), ops::As(Col("E.T"), "T")}),
          ra::Lt(Lit(5), Lit(3))));

  auto on = ExecuteWithPlus(q, catalog, core::OracleLike());
  ASSERT_TRUE(on.ok()) << on.status();
  EXPECT_GE(on->counters.facts_dead_selects, 1u);

  auto profile = core::OracleLike();
  profile.plan_facts = false;
  auto off = ExecuteWithPlus(q, catalog, profile);
  ASSERT_TRUE(off.ok()) << off.status();
  EXPECT_EQ(off->counters.facts_dead_selects, 0u);
  EXPECT_EQ(SortedRows(on->table), SortedRows(off->table));

  // Both agree with the plain TC result.
  auto plain = ExecuteWithPlus(Tc(), catalog, core::OracleLike());
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_EQ(SortedRows(on->table), SortedRows(plain->table));
}

TEST(DataflowExecutor, DedupSkipCountsAndPreservesRows) {
  auto catalog = MakeCatalog(TinyGraph());
  // Max-label propagation whose delta is Distinct over a group-by: the
  // group keys prove the input duplicate-free, so dedup is the identity.
  WithPlusQuery q;
  q.rec_name = "Rv";
  q.rec_schema =
      Schema{{"ID", ValueType::kInt64}, {"val", ValueType::kDouble}};
  q.init.push_back(
      {core::ProjectOp(Scan("V"), {ops::As(Col("ID"), "ID"),
                                   ops::As(Col("vw"), "val")}),
       {}});
  q.recursive.push_back(
      {core::DistinctOp(core::ProjectOp(
           core::GroupByOp(
               core::JoinOp(Scan("Rv"), Scan("E"), {{"ID"}, {"F"}}),
               {"E.T"},
               {ra::AggSpec{ra::AggKind::kMax, Col("Rv.val"), "nv"}}),
           {ops::As(Col("T"), "ID"), ops::As(Col("nv"), "val")})),
       {}});
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {"ID"};
  q.maxrecursion = 5;

  auto on = ExecuteWithPlus(q, catalog, core::OracleLike());
  ASSERT_TRUE(on.ok()) << on.status();
  EXPECT_GE(on->counters.facts_dedup_skips, 1u);

  auto profile = core::OracleLike();
  profile.plan_facts = false;
  auto off = ExecuteWithPlus(q, catalog, profile);
  ASSERT_TRUE(off.ok()) << off.status();
  EXPECT_EQ(off->counters.facts_dedup_skips, 0u);
  EXPECT_EQ(SortedRows(on->table), SortedRows(off->table));
}

// ---------------------------------------------------------------------
// Explain audit: the hoist markers ExplainWithPlus prints must match the
// hoisting the executor actually performs.
// ---------------------------------------------------------------------

TEST(DataflowExplain, HoistMarkersMatchExecutorHoisting) {
  auto catalog = MakeCatalog(TinyGraph());
  auto q = InvariantChainQuery();

  const std::string text =
      core::ExplainWithPlus(q, catalog, core::OracleLike());
  EXPECT_NE(text.find("plan facts: on"), std::string::npos) << text;
  EXPECT_NE(text.find("~ facts:"), std::string::npos) << text;

  const size_t inv =
      CountOf(text, "[invariant — materialized once pre-loop]");
  const size_t hoisted = CountOf(text, "[hoisted pre-loop]");
  EXPECT_EQ(inv, 2u) << text;      // Heavy, Heavy2
  EXPECT_EQ(hoisted, 1u) << text;  // the invariant select in the delta

  auto run = ExecuteWithPlus(q, catalog, core::OracleLike());
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->counters.hoisted_subplans, inv + hoisted) << text;

  // With facts off the explain must say so and agree with the legacy
  // invariance walk — same markers for this fully-analyzable chain.
  auto profile = core::OracleLike();
  profile.plan_facts = false;
  const std::string off =
      core::ExplainWithPlus(q, catalog, profile);
  EXPECT_NE(off.find("plan facts: off"), std::string::npos) << off;
  EXPECT_EQ(off.find("~ facts:"), std::string::npos) << off;
}

// ---------------------------------------------------------------------
// Ground truth: every seed algorithm returns row-identical results with
// facts {on, off} × DOP {1, 8} × plan cache {on, off}.
// ---------------------------------------------------------------------

TEST(DataflowIdentity, AlgorithmsInvariantUnderFactsDopAndCache) {
  for (const auto& entry : algos::EvaluationSet(/*include_toposort=*/true)) {
    graph::Graph g = entry.needs_dag ? TinyDag() : TinyGraph();
    std::vector<int64_t> labels;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      labels.push_back(1 + (v % 3));
    }
    g.set_node_labels(std::move(labels));
    auto catalog = MakeCatalog(g);

    std::vector<std::string> baseline;
    bool have_baseline = false;
    for (int facts : {1, 0}) {
      for (int dop : {1, 8}) {
        for (int cache : {1, 0}) {
          algos::AlgoOptions opt;
          opt.plan_facts = facts;
          opt.degree_of_parallelism = dop;
          opt.plan_cache = cache;
          auto result = entry.run(catalog, opt);
          ASSERT_TRUE(result.ok())
              << entry.name << " facts=" << facts << " dop=" << dop
              << " cache=" << cache << ": " << result.status();
          auto rows = SortedRows(result->table);
          if (!have_baseline) {
            baseline = rows;
            have_baseline = true;
          } else {
            EXPECT_EQ(rows, baseline)
                << entry.name << " diverged at facts=" << facts
                << " dop=" << dop << " cache=" << cache;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace gpr
