// Unit tests for the DATALOG IR: dependency graphs, stratification, the
// bi-state transform, XY-stratification (Section 5), and the plan-level
// gates of Algorithm 1.
#include <gtest/gtest.h>

#include "core/datalog.h"
#include "core/plan.h"
#include "core/stratify.h"
#include "core/with_plus.h"
#include "ra/expr.h"

namespace gpr::core {
namespace {

DatalogLiteral Lit0(std::string pred, bool neg = false,
                    TemporalArg t = TemporalArg::kNone) {
  return {std::move(pred), neg, t};
}

DatalogRule Rule(DatalogLiteral head, std::vector<DatalogLiteral> body) {
  return {std::move(head), std::move(body)};
}

TEST(DependencyGraph, DetectsRecursivePredicates) {
  DatalogProgram p;
  p.rules.push_back(Rule(Lit0("tc"), {Lit0("e")}));
  p.rules.push_back(Rule(Lit0("tc"), {Lit0("tc"), Lit0("e")}));
  DependencyGraph g(p);
  auto rec = g.RecursivePredicates();
  EXPECT_EQ(rec.size(), 1u);
  EXPECT_TRUE(rec.count("tc"));
}

TEST(DependencyGraph, MutualRecursionFormsOneScc) {
  DatalogProgram p;
  p.rules.push_back(Rule(Lit0("hub"), {Lit0("auth")}));
  p.rules.push_back(Rule(Lit0("auth"), {Lit0("hub")}));
  DependencyGraph g(p);
  auto rec = g.RecursivePredicates();
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_TRUE(g.HasAtMostOneCycle());
}

TEST(DependencyGraph, TwoCyclesDetected) {
  DatalogProgram p;
  p.rules.push_back(Rule(Lit0("a"), {Lit0("b")}));
  p.rules.push_back(Rule(Lit0("b"), {Lit0("a")}));
  p.rules.push_back(Rule(Lit0("c"), {Lit0("d")}));
  p.rules.push_back(Rule(Lit0("d"), {Lit0("c")}));
  DependencyGraph g(p);
  EXPECT_FALSE(g.HasAtMostOneCycle());
}

TEST(Stratification, PositiveRecursionIsStratified) {
  DatalogProgram p;
  p.rules.push_back(Rule(Lit0("tc"), {Lit0("e")}));
  p.rules.push_back(Rule(Lit0("tc"), {Lit0("tc"), Lit0("e")}));
  EXPECT_TRUE(IsStratified(p));
}

TEST(Stratification, NegationThroughRecursionRejected) {
  // win(X) :- move(X,Y), ~win(Y) — the classic non-stratified program.
  DatalogProgram p;
  p.rules.push_back(Rule(Lit0("win"), {Lit0("move"), Lit0("win", true)}));
  std::string why;
  EXPECT_FALSE(IsStratified(p, &why));
  EXPECT_NE(why.find("win"), std::string::npos);
}

TEST(Stratification, NegationOfLowerStratumAccepted) {
  // p :- base, ~q.  q :- base. — stratified (q before p).
  DatalogProgram p;
  p.rules.push_back(Rule(Lit0("q"), {Lit0("base")}));
  p.rules.push_back(Rule(Lit0("p"), {Lit0("base"), Lit0("q", true)}));
  EXPECT_TRUE(IsStratified(p));
  auto strata = DependencyGraph(p).Stratify();
  ASSERT_TRUE(strata.ok());
  EXPECT_LT(strata->at("q"), strata->at("p"));
}

TEST(Stratification, StratifyFailsOnNegativeCycle) {
  DatalogProgram p;
  p.rules.push_back(Rule(Lit0("a"), {Lit0("b", true)}));
  p.rules.push_back(Rule(Lit0("b"), {Lit0("a")}));
  auto strata = DependencyGraph(p).Stratify();
  EXPECT_FALSE(strata.ok());
  EXPECT_EQ(strata.status().code(), StatusCode::kNotStratifiable);
}

TEST(BiState, SplitsNewAndOldOccurrences) {
  // R(s(T)) :- R(T), ~D(s(T)).   (Eq. 22 "keep" rule.)
  DatalogProgram p;
  p.rules.push_back(
      Rule(Lit0("r", false, TemporalArg::kST),
           {Lit0("r", false, TemporalArg::kT),
            Lit0("d", true, TemporalArg::kST)}));
  p.rules.push_back(Rule(Lit0("d", false, TemporalArg::kST),
                         {Lit0("r", false, TemporalArg::kT)}));
  DatalogProgram bis = BiState(p);
  ASSERT_EQ(bis.rules.size(), 2u);
  EXPECT_EQ(bis.rules[0].head.predicate, "new_r");
  EXPECT_EQ(bis.rules[0].body[0].predicate, "old_r");
  EXPECT_EQ(bis.rules[0].body[1].predicate, "new_d");
  EXPECT_TRUE(bis.rules[0].body[1].negated);
  // The bi-state program is stratified: old_r < new_d < new_r.
  EXPECT_TRUE(IsStratified(bis));
}

TEST(XYStratified, UnionByUpdateProgramAccepted) {
  // The Eq. 22 pair is XY-stratified.
  DatalogProgram p;
  p.rules.push_back(Rule(Lit0("d", false, TemporalArg::kST),
                         {Lit0("e"), Lit0("r", false, TemporalArg::kT)}));
  p.rules.push_back(
      Rule(Lit0("r", false, TemporalArg::kST),
           {Lit0("r", false, TemporalArg::kT),
            Lit0("d", true, TemporalArg::kST)}));
  p.rules.push_back(Rule(Lit0("r", false, TemporalArg::kST),
                         {Lit0("d", false, TemporalArg::kST)}));
  EXPECT_TRUE(CheckXYStratified(p).ok());
}

TEST(XYStratified, MissingTemporalArgumentRejected) {
  DatalogProgram p;
  p.rules.push_back(Rule(Lit0("r", false, TemporalArg::kST),
                         {Lit0("r")}));  // recursive subgoal without stage
  auto st = CheckXYStratified(p);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotStratifiable);
}

TEST(XYStratified, SameStageNegationOfSelfRejected) {
  // R(s(T)) :- E, ~R(s(T)) — bi-state: new_r :- e, ~new_r (negative
  // self-loop).
  DatalogProgram p;
  p.rules.push_back(Rule(Lit0("r", false, TemporalArg::kST),
                         {Lit0("e"), Lit0("r", true, TemporalArg::kST)}));
  p.rules.push_back(Rule(Lit0("r", false, TemporalArg::kST),
                         {Lit0("r", false, TemporalArg::kT)}));
  auto st = CheckXYStratified(p);
  EXPECT_FALSE(st.ok());
}

TEST(XYStratified, PaperExampleBfs) {
  // delta(s(T)) :- E, R(T);  R(s(T)) :- R(T), ~delta(s(T));
  // R(s(T)) :- delta(s(T)).
  DatalogProgram p;
  p.rules.push_back(Rule(Lit0("delta", false, TemporalArg::kST),
                         {Lit0("E"), Lit0("R", false, TemporalArg::kT)}));
  p.rules.push_back(
      Rule(Lit0("R", false, TemporalArg::kST),
           {Lit0("R", false, TemporalArg::kT),
            Lit0("delta", true, TemporalArg::kST)}));
  p.rules.push_back(Rule(Lit0("R", false, TemporalArg::kST),
                         {Lit0("delta", false, TemporalArg::kST)}));
  EXPECT_TRUE(CheckXYStratified(p).ok());
}

// ------------------------------------------------ plan-level gates

WithPlusQuery MinimalQuery() {
  WithPlusQuery q;
  q.rec_name = "R";
  q.rec_schema = ra::Schema{{"ID", ra::ValueType::kInt64}};
  q.init.push_back({ProjectOp(Scan("V"), {ra::ops::As(ra::Col("ID"), "ID")}),
                    {}});
  q.recursive.push_back(
      {ProjectOp(JoinOp(Scan("R"), Scan("E"), {{"ID"}, {"F"}}),
                 {ra::ops::As(ra::Col("E.T"), "ID")}),
       {}});
  q.mode = UnionMode::kUnionDistinct;
  return q;
}

TEST(WithPlusGate, MinimalQueryIsXYStratified) {
  EXPECT_TRUE(CheckWithPlusStratified(MinimalQuery()).ok());
}

TEST(WithPlusGate, LoweringProducesDeltaAndCombinationRules) {
  auto program = LowerToDatalog(MinimalQuery());
  ASSERT_TRUE(program.ok());
  // delta rule + copy rule + add rule.
  EXPECT_EQ(program->rules.size(), 3u);
}

TEST(WithPlusGate, ComputedByForwardReferenceRejected) {
  WithPlusQuery q = MinimalQuery();
  Subquery& rec = q.recursive[0];
  // def A references def B which is defined later: cycle-free violation.
  rec.computed_by.push_back(
      {"A", ProjectOp(Scan("B"), {ra::ops::As(ra::Col("ID"), "ID")})});
  rec.computed_by.push_back(
      {"B", ProjectOp(Scan("R"), {ra::ops::As(ra::Col("ID"), "ID")})});
  auto st = CheckWithPlusStratified(q);
  EXPECT_FALSE(st.ok());
}

TEST(WithPlusGate, ComputedByShadowingRecravRejected) {
  WithPlusQuery q = MinimalQuery();
  q.recursive[0].computed_by.push_back(
      {"R", ProjectOp(Scan("V"), {ra::ops::As(ra::Col("ID"), "ID")})});
  auto st = CheckWithPlusStratified(q);
  EXPECT_FALSE(st.ok());
}

TEST(WithPlusGate, DuplicateComputedByRejected) {
  WithPlusQuery q = MinimalQuery();
  auto def = ComputedByDef{
      "A", ProjectOp(Scan("R"), {ra::ops::As(ra::Col("ID"), "ID")})};
  q.recursive[0].computed_by.push_back(def);
  q.recursive[0].computed_by.push_back(def);
  EXPECT_FALSE(CheckWithPlusStratified(q).ok());
}

TEST(PlanAnalysis, RefCollectionAndOperatorClasses) {
  auto plan = ProjectOp(
      AntiJoinOp(Scan("V"), Scan("Topo"), {{"ID"}, {"ID"}}),
      {ra::ops::As(ra::Col("ID"), "ID")});
  std::vector<TableRef> refs;
  CollectTableRefs(plan, &refs);
  ASSERT_EQ(refs.size(), 2u);
  EXPECT_FALSE(refs[0].negated);
  EXPECT_TRUE(refs[1].negated);
  EXPECT_TRUE(PlanUsesNegation(plan));
  EXPECT_FALSE(PlanUsesAggregation(plan));

  auto agg = GroupByOp(Scan("E"), {"F"}, {ra::CountStar("c")});
  EXPECT_TRUE(PlanUsesAggregation(agg));
  EXPECT_FALSE(PlanUsesNegation(agg));
}

TEST(PlanAnalysis, EmptinessPropagation) {
  std::unordered_set<std::string> empty{"X"};
  // Join with an empty side is empty.
  EXPECT_TRUE(PlanMustBeEmpty(JoinOp(Scan("X"), Scan("E"), {{"a"}, {"b"}}),
                              empty));
  // Union with one empty side is not.
  EXPECT_FALSE(PlanMustBeEmpty(UnionAllOp(Scan("X"), Scan("E")), empty));
  // Anti-join with an empty right side is not empty.
  EXPECT_FALSE(PlanMustBeEmpty(
      AntiJoinOp(Scan("E"), Scan("X"), {{"a"}, {"b"}}), empty));
  // Left outer join with an empty right side is not empty.
  EXPECT_FALSE(PlanMustBeEmpty(
      LeftOuterJoinOp(Scan("E"), Scan("X"), {{"a"}, {"b"}}), empty));
  // Scalar aggregation over empty input still yields a row.
  EXPECT_FALSE(PlanMustBeEmpty(
      GroupByOp(Scan("X"), {}, {ra::CountStar("c")}), empty));
  // Grouped aggregation over empty input is empty.
  EXPECT_TRUE(PlanMustBeEmpty(
      GroupByOp(Scan("X"), {"a"}, {ra::CountStar("c")}), empty));
}

}  // namespace
}  // namespace gpr::core
