// Systematic error-path coverage: every public API must fail with the
// documented StatusCode, never crash, and leave the catalog clean.
#include <gtest/gtest.h>

#include "algos/algos.h"
#include "core/plan.h"
#include "core/union_by_update.h"
#include "core/with_plus.h"
#include "exec/exec_context.h"
#include "ra/operators.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "test_util.h"

namespace gpr {
namespace {

namespace ops = ra::ops;
using gpr::testing::MakeCatalog;
using gpr::testing::TinyGraph;
using ra::Col;
using ra::Lit;
using ra::Schema;
using ra::Table;
using ra::ValueType;

TEST(ErrorPaths, OperatorsRejectBadInputs) {
  Table e("E", Schema{{"F", ValueType::kInt64}, {"T", ValueType::kInt64}});
  Table v("V", Schema{{"ID", ValueType::kInt64}});
  Table s("S", Schema{{"x", ValueType::kString}});

  // Union between incompatible schemas.
  EXPECT_EQ(ops::UnionAll(e, v).status().code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(ops::UnionAll(v, s).status().code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(ops::Difference(e, s).status().code(),
            StatusCode::kTypeMismatch);
  // Join key arity mismatch.
  EXPECT_EQ(
      ops::Join(e, v, {{"F", "T"}, {"ID"}}).status().code(),
      StatusCode::kInvalidArgument);
  // Unknown join key column.
  EXPECT_EQ(ops::Join(e, v, {{"nope"}, {"ID"}}).status().code(),
            StatusCode::kBindError);
  // Selection over an unknown column.
  EXPECT_EQ(ops::Select(e, ra::Gt(Col("zz"), Lit(0))).status().code(),
            StatusCode::kBindError);
  // Group-by with an unknown aggregate input.
  EXPECT_EQ(ops::GroupBy(e, {"F"}, {ra::SumOf(Col("zz"), "s")})
                .status()
                .code(),
            StatusCode::kBindError);
  // Rename with the wrong arity.
  EXPECT_EQ(ops::Rename(e, "X", {"only"}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ErrorPaths, UnionByUpdateErrors) {
  Table r("R", Schema{{"ID", ValueType::kInt64}, {"w", ValueType::kDouble}});
  Table bad("S", Schema{{"x", ValueType::kString}});
  EXPECT_EQ(core::UnionByUpdate(r, bad, {"ID"},
                                core::UnionByUpdateImpl::kMerge)
                .status()
                .code(),
            StatusCode::kTypeMismatch);
  Table s("S", r.schema());
  EXPECT_EQ(core::UnionByUpdate(r, s, {"nope"},
                                core::UnionByUpdateImpl::kMerge)
                .status()
                .code(),
            StatusCode::kBindError);
}

TEST(ErrorPaths, ExecutePlanSurfacesFailures) {
  auto catalog = MakeCatalog(TinyGraph());
  // Unknown table.
  EXPECT_EQ(core::ExecutePlan(core::Scan("Nope"), catalog, core::OracleLike())
                .status()
                .code(),
            StatusCode::kNotFound);
  // Self-join of two unnamed intermediates with colliding columns.
  auto bad = core::JoinOp(core::Scan("E"), core::Scan("E"), {{"T"}, {"F"}});
  EXPECT_EQ(
      core::ExecutePlan(bad, catalog, core::OracleLike()).status().code(),
      StatusCode::kBindError);
}

TEST(ErrorPaths, WithPlusCleansUpAfterMidRunFailure) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  core::WithPlusQuery q;
  q.rec_name = "Rerr";
  q.rec_schema = Schema{{"ID", ValueType::kInt64}};
  q.init.push_back(
      {core::ProjectOp(core::Scan("V"), {ops::As(Col("ID"), "ID")}), {}});
  // The recursive subquery fails at execution: unknown column.
  q.recursive.push_back(
      {core::ProjectOp(core::JoinOp(core::Scan("Rerr"), core::Scan("E"),
                                    {{"ID"}, {"F"}}),
                       {ops::As(Col("no_such_col"), "ID")}),
       {}});
  q.mode = core::UnionMode::kUnionDistinct;
  auto result = core::ExecuteWithPlus(q, catalog, core::OracleLike());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kBindError);
  // No temporaries may survive the failure.
  EXPECT_EQ(catalog.TableNames(), before);
}

TEST(ErrorPaths, WithPlusSchemaMismatchIsReported) {
  auto catalog = MakeCatalog(TinyGraph());
  core::WithPlusQuery q;
  q.rec_name = "Rmis";
  q.rec_schema = Schema{{"ID", ValueType::kInt64}};
  // Init produces two columns for a one-column recursive relation.
  q.init.push_back({core::Scan("V"), {}});
  q.recursive.push_back(
      {core::ProjectOp(core::JoinOp(core::Scan("Rmis"), core::Scan("E"),
                                    {{"ID"}, {"F"}}),
                       {ops::As(Col("E.T"), "ID")}),
       {}});
  q.mode = core::UnionMode::kUnionDistinct;
  auto result = core::ExecuteWithPlus(q, catalog, core::OracleLike());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeMismatch);
}

TEST(ErrorPaths, AlgosRequireTheirInputs) {
  // Keyword-Search without labels / with too many keywords.
  graph::Graph g = gpr::testing::TinyGraph();  // no labels attached
  ra::Catalog catalog;
  GPR_CHECK_OK(graph::RegisterGraph(g, &catalog));  // no VL table
  algos::AlgoOptions opt;
  auto ks = algos::KeywordSearch(catalog, opt);
  EXPECT_FALSE(ks.ok());  // VL missing
  opt.keywords = std::vector<int64_t>(9, 1);
  EXPECT_EQ(algos::KeywordSearch(catalog, opt).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ErrorPaths, SqlParserErrorsCarryParseErrorCode) {
  for (const char* bad : {
           "with",                           // truncated
           "with R as select",               // missing body parens
           "select from E",                  // missing select list
           "select F from",                  // missing table
           "select F from E where",          // missing predicate
           "select F from E group by",       // missing group column
           "with R(x) as ((select F from E) union bogus (select F from E))",
       }) {
    auto r = sql::ParseWithStatement(bad);
    if (r.ok()) {
      ADD_FAILURE() << "accepted: " << bad;
      continue;
    }
    EXPECT_EQ(r.status().code(), StatusCode::kParseError) << bad;
  }
}

TEST(ErrorPaths, GovernorStatusCodesHaveNamesAndFactories) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DeadlineExceeded("too slow").ToString(),
            "DeadlineExceeded: too slow");
}

TEST(ErrorPaths, StatusDetailRendersAndIsIgnoredByEquality) {
  exec::ExecProgress progress;
  progress.iterations = 3;
  progress.rows_produced = 120;
  progress.tripped = "rows";
  Status with_detail =
      Status::ResourceExhausted("row budget exhausted")
          .WithDetail(std::make_shared<exec::ProgressDetail>(progress));
  // ToString carries the payload...
  EXPECT_NE(with_detail.ToString().find("iterations=3"), std::string::npos);
  EXPECT_NE(with_detail.ToString().find("tripped=rows"), std::string::npos);
  // ...the typed accessor recovers it...
  const auto* detail = exec::ProgressDetail::FromStatus(with_detail);
  ASSERT_NE(detail, nullptr);
  EXPECT_EQ(detail->progress().rows_produced, 120u);
  // ...and a status of another type yields nullptr, not a bad cast.
  EXPECT_EQ(exec::ProgressDetail::FromStatus(Status::OK()), nullptr);
  // Equality compares code + message only.
  EXPECT_EQ(with_detail, Status::ResourceExhausted("row budget exhausted"));
}

TEST(ErrorPaths, BinderErrorsCarryBindErrorCode) {
  auto catalog = MakeCatalog(TinyGraph());
  // in-subquery with two output columns.
  auto ast = sql::ParseSelect(
      "select F from E where F not in (select F, T from E)");
  ASSERT_TRUE(ast.ok());
  auto plan = sql::BindSelect(*ast, catalog);
  EXPECT_EQ(plan.status().code(), StatusCode::kBindError);
  // '*' outside count().
  auto star = sql::ParseSelect("select sum(*) from E");
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(sql::BindSelect(*star, catalog).status().code(),
            StatusCode::kBindError);
}

}  // namespace
}  // namespace gpr
