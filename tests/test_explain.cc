// Tests for the EXPLAIN facility.
#include <gtest/gtest.h>

#include "core/explain.h"
#include "test_util.h"

namespace gpr::core {
namespace {

namespace ops = ra::ops;
using gpr::testing::MakeCatalog;
using gpr::testing::TinyGraph;
using ra::Col;

TEST(Explain, ShowsJoinAlgorithmPerProfile) {
  auto catalog = MakeCatalog(TinyGraph());
  // A temp (stat-less) inner input drives the profile's fallback choice.
  GPR_CHECK_OK(catalog.CreateTempTable(
      "tmp", ra::Schema{{"ID", ra::ValueType::kInt64}}));
  auto plan = JoinOp(Scan("E"), Scan("tmp"), {{"T"}, {"ID"}});

  const std::string oracle = Explain(plan, catalog, OracleLike());
  EXPECT_NE(oracle.find("Join(hash)"), std::string::npos) << oracle;

  const std::string pg = Explain(plan, catalog, PostgresLike());
  EXPECT_NE(pg.find("Join(sort-merge)"), std::string::npos) << pg;
  EXPECT_NE(pg.find("[index adopted]"), std::string::npos) << pg;

  // Base tables are analyzed, so a base inner input hashes everywhere.
  auto base_plan = JoinOp(Scan("E"), Scan("V"), {{"T"}, {"ID"}});
  const std::string pg_base = Explain(base_plan, catalog, PostgresLike());
  EXPECT_NE(pg_base.find("Join(hash)"), std::string::npos) << pg_base;
}

TEST(Explain, ShowsTableFacts) {
  auto catalog = MakeCatalog(TinyGraph());
  const std::string s = Explain(Scan("E"), catalog, OracleLike());
  EXPECT_NE(s.find("Scan E [6 rows, stats]"), std::string::npos) << s;
  const std::string missing = Explain(Scan("Nope"), catalog, OracleLike());
  EXPECT_NE(missing.find("[unbound]"), std::string::npos);
}

TEST(Explain, ShowsAntiJoinRewrites) {
  auto catalog = MakeCatalog(TinyGraph());
  auto plan = AntiJoinOp(Scan("V"), Scan("E"), {{"ID"}, {"T"}},
                         AntiJoinImpl::kNotIn);
  const std::string oracle = Explain(plan, catalog, OracleLike());
  EXPECT_NE(oracle.find("rewritten to internal anti-join"),
            std::string::npos)
      << oracle;
  const std::string pg = Explain(plan, catalog, PostgresLike());
  EXPECT_EQ(pg.find("rewritten to internal anti-join"), std::string::npos);
}

TEST(Explain, WithPlusCoversAllParts) {
  auto catalog = MakeCatalog(TinyGraph());
  WithPlusQuery q;
  q.rec_name = "R";
  q.rec_schema = ra::Schema{{"ID", ra::ValueType::kInt64}};
  q.init.push_back({ProjectOp(Scan("V"), {ops::As(Col("ID"), "ID")}), {}});
  Subquery rec;
  rec.computed_by.push_back(
      {"D1", ProjectOp(JoinOp(Scan("R"), Scan("E"), {{"ID"}, {"F"}}),
                       {ops::As(Col("E.T"), "ID")})});
  rec.plan = ProjectOp(Scan("D1"), {ops::As(Col("ID"), "ID")});
  q.recursive.push_back(std::move(rec));
  q.mode = UnionMode::kUnionDistinct;
  q.maxrecursion = 9;

  const std::string s = ExplainWithPlus(q, catalog, PostgresLike());
  EXPECT_NE(s.find("recursive relation: R"), std::string::npos);
  EXPECT_NE(s.find("mode: union"), std::string::npos);
  EXPECT_NE(s.find("maxrecursion 9"), std::string::npos);
  EXPECT_NE(s.find("initial subquery 1"), std::string::npos);
  EXPECT_NE(s.find("computed by D1"), std::string::npos);
  EXPECT_NE(s.find("recursive subquery 1"), std::string::npos);
  EXPECT_NE(s.find("[recursive/def]"), std::string::npos) << s;
  EXPECT_NE(s.find("create procedure F_R"), std::string::npos);
}

}  // namespace
}  // namespace gpr::core
