// Tests for the Table 2 extension algorithms: K-truss and
// Graph-Bisimulation, cross-checked against native references.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "algos/extensions.h"
#include "baseline/native_algos.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gpr {
namespace {

using gpr::testing::MakeCatalog;
using graph::Graph;
using graph::NodeId;

TEST(KTruss, TriangleWithPendantEdge) {
  // Triangle 0-1-2 plus pendant 0-3: the 3-truss is exactly the triangle.
  Graph g(4, {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}, {0, 3, 1}});
  auto catalog = MakeCatalog(g);
  algos::AlgoOptions opt;
  opt.k = 3;
  auto result = algos::KTruss(catalog, opt);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  std::set<std::pair<int64_t, int64_t>> edges;
  for (const auto& row : result->table.rows()) {
    const auto u = row[0].AsInt64();
    const auto v = row[1].AsInt64();
    if (u < v) edges.insert({u, v});
  }
  EXPECT_EQ(edges, (std::set<std::pair<int64_t, int64_t>>{
                       {0, 1}, {0, 2}, {1, 2}}));
}

TEST(KTruss, MatchesNativeOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = graph::Rmat(40, 220, seed);
    for (int k : {3, 4}) {
      auto catalog = MakeCatalog(g);
      algos::AlgoOptions opt;
      opt.k = k;
      auto result = algos::KTruss(catalog, opt);
      ASSERT_TRUE(result.ok()) << result.status();
      std::set<std::pair<NodeId, NodeId>> got;
      for (const auto& row : result->table.rows()) {
        const auto u = row[0].AsInt64();
        const auto v = row[1].AsInt64();
        if (u < v) got.insert({u, v});
      }
      auto expected = baseline::KTruss(g, k);
      std::set<std::pair<NodeId, NodeId>> want(expected.begin(),
                                               expected.end());
      EXPECT_EQ(got, want) << "seed " << seed << " k " << k;
    }
  }
}

TEST(Bisimulation, DistinguishesByLabelAndSuccessors) {
  // 0 and 1 share label and successor block; 2 differs by label; 3 and 4
  // are sinks with equal labels.
  Graph g(5, {{0, 3, 1}, {1, 4, 1}, {2, 3, 1}});
  g.set_node_labels({7, 7, 9, 5, 5});
  auto catalog = MakeCatalog(g);
  auto result = algos::GraphBisimulation(catalog, {});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  std::map<int64_t, int64_t> blk;
  for (const auto& row : result->table.rows()) {
    blk[row[0].AsInt64()] = row[1].AsInt64();
  }
  EXPECT_EQ(blk.at(0), blk.at(1));   // bisimilar
  EXPECT_NE(blk.at(0), blk.at(2));   // different label
  EXPECT_EQ(blk.at(3), blk.at(4));   // equivalent sinks
  EXPECT_NE(blk.at(0), blk.at(3));
}

TEST(Bisimulation, MatchesNativePartitionOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Graph g = graph::Rmat(60, 200, seed);
    graph::AttachRandomNodeData(&g, seed + 7, 0, 20, /*num_labels=*/3);
    auto catalog = MakeCatalog(g);
    auto result = algos::GraphBisimulation(catalog, {});
    ASSERT_TRUE(result.ok()) << result.status();
    auto expected = baseline::GraphBisimulation(g);
    auto got = gpr::testing::VectorOf(result->table);
    ASSERT_EQ(got.size(), static_cast<size_t>(g.num_nodes()));
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(static_cast<NodeId>(got.at(v)), expected[v])
          << "seed " << seed << " node " << v;
    }
  }
}

TEST(Bisimulation, RefinesStrictlyUntilFixpoint) {
  // A directed path: every node is its own block in the end (distance to
  // the sink differs).
  std::vector<graph::Edge> edges;
  for (int i = 0; i < 7; ++i) edges.push_back({i, i + 1, 1.0});
  Graph g(8, std::move(edges));
  g.set_node_labels(std::vector<int64_t>(8, 1));
  auto catalog = MakeCatalog(g);
  auto result = algos::GraphBisimulation(catalog, {});
  ASSERT_TRUE(result.ok()) << result.status();
  std::set<int64_t> blocks;
  for (const auto& row : result->table.rows()) {
    blocks.insert(row[1].AsInt64());
  }
  EXPECT_EQ(blocks.size(), 8u);
}

}  // namespace
}  // namespace gpr
