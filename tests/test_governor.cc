// Tests for the execution governor (gpr::exec): deadlines, row/byte
// budgets, iteration caps, cooperative cancellation, deterministic fault
// injection, catalog hygiene under all of them, and the SQL surface
// (maxtime / maxrows / maxbytes hints).
//
// This binary is also the payload of the CI fault-injection matrix: it is
// re-run with several GPR_FAULTS settings, so every test either pins the
// fault spec explicitly ("none" or a literal spec) or is written as a
// property test that accepts any injected outcome.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "algos/algos.h"
#include "core/mutual.h"
#include "core/plan.h"
#include "core/with_plus.h"
#include "exec/exec_context.h"
#include "exec/fault_injector.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "test_util.h"

namespace gpr {
namespace {

namespace ops = ra::ops;
using core::ExecuteMutual;
using core::ExecuteWithPlus;
using core::JoinOp;
using core::MutualQuery;
using core::MutualRelation;
using core::OracleLike;
using core::ProjectOp;
using core::RenameOp;
using core::Scan;
using core::UnionMode;
using core::WithPlusQuery;
using exec::CancellationToken;
using exec::ExecContext;
using exec::ExecLimits;
using exec::FaultInjector;
using exec::MakeGovernor;
using exec::ProgressDetail;
using gpr::testing::MakeCatalog;
using gpr::testing::TinyGraph;
using ra::Col;
using ra::Schema;
using ra::ValueType;

/// Pins GPR_FAULTS for the lifetime of a test, restoring the previous
/// value on destruction (the CI matrix sets it process-wide).
class ScopedFaultsEnv {
 public:
  explicit ScopedFaultsEnv(const char* value) {
    const char* old = std::getenv("GPR_FAULTS");
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv("GPR_FAULTS", value, 1);
    } else {
      ::unsetenv("GPR_FAULTS");
    }
  }
  ~ScopedFaultsEnv() {
    if (had_) {
      ::setenv("GPR_FAULTS", saved_.c_str(), 1);
    } else {
      ::unsetenv("GPR_FAULTS");
    }
  }

 private:
  std::string saved_;
  bool had_ = false;
};

/// Degree of parallelism for every query this binary runs; the CI fault
/// matrix sets GPR_TEST_DOP to re-run the whole suite under parallel
/// execution (faults fire at operator boundaries on the coordinating
/// thread, so every assertion must hold unchanged at any DOP).
int TestDop() {
  const char* v = std::getenv("GPR_TEST_DOP");
  const int dop = v != nullptr ? std::atoi(v) : 0;
  return dop > 0 ? dop : 0;
}

/// Plan-state-cache override for every with+ this binary runs; the CI
/// fault matrix sets GPR_TEST_CACHE=1 to re-run the suite with caching
/// forced on (faults and budget trips must behave identically — cached
/// artifacts are dropped with the query either way).
int TestCache() {
  const char* v = std::getenv("GPR_TEST_CACHE");
  return v != nullptr ? std::atoi(v) : -1;
}

/// CSR-kernel override (GPR_TEST_KERNELS): the CI fault matrix re-runs
/// the suite with the SpMV/SpMM kernel path forced off (0) and on (1) —
/// governor trips and injected faults must behave identically on either
/// physical path.
int TestKernels() {
  const char* v = std::getenv("GPR_TEST_KERNELS");
  return v != nullptr ? std::atoi(v) : -1;
}

/// Vectorized-batch override (GPR_TEST_VECTORIZE): same matrix idea as
/// GPR_TEST_KERNELS for the column-batch execution path
/// (ra/vectorized.h).
int TestVectorize() {
  const char* v = std::getenv("GPR_TEST_VECTORIZE");
  return v != nullptr ? std::atoi(v) : -1;
}

/// TC over E; `spec` pins the fault-injection behaviour.
WithPlusQuery TcQuery(UnionMode mode, const std::string& spec = "none") {
  WithPlusQuery q;
  q.rec_name = "TCg";
  q.rec_schema = Schema{{"F", ValueType::kInt64}, {"T", ValueType::kInt64}};
  q.init.push_back(
      {ProjectOp(Scan("E"), {ops::As(Col("F"), "F"), ops::As(Col("T"), "T")}),
       {}});
  q.recursive.push_back(
      {ProjectOp(JoinOp(Scan("TCg"), Scan("E"), {{"T"}, {"F"}}),
                 {ops::As(Col("TCg.F"), "F"), ops::As(Col("E.T"), "T")}),
       {}});
  q.mode = mode;
  q.fault_spec = spec;
  q.degree_of_parallelism = TestDop();
  q.plan_cache = TestCache();
  q.csr_kernels = TestKernels();
  q.vectorized = TestVectorize();
  return q;
}

/// Even/odd path reachability — exercises ExecuteMutual's cleanup paths.
MutualQuery EvenOddQuery(const std::string& spec = "none") {
  MutualQuery q;
  MutualRelation odd;
  odd.name = "OddG";
  odd.schema = Schema{{"F", ValueType::kInt64}, {"T", ValueType::kInt64}};
  odd.init = {ProjectOp(Scan("E"),
                        {ops::As(Col("F"), "F"), ops::As(Col("T"), "T")})};
  odd.recursive.plan =
      ProjectOp(JoinOp(Scan("EvenG"), Scan("E"), {{"T"}, {"F"}}),
                {ops::As(Col("EvenG.F"), "F"), ops::As(Col("E.T"), "T")});
  odd.mode = UnionMode::kUnionDistinct;
  MutualRelation even;
  even.name = "EvenG";
  even.schema = odd.schema;
  even.init = {ProjectOp(
      JoinOp(RenameOp(Scan("E"), "E1"), RenameOp(Scan("E"), "E2"),
             {{"T"}, {"F"}}),
      {ops::As(Col("E1.F"), "F"), ops::As(Col("E2.T"), "T")})};
  even.recursive.plan =
      ProjectOp(JoinOp(Scan("OddG"), Scan("E"), {{"T"}, {"F"}}),
                {ops::As(Col("OddG.F"), "F"), ops::As(Col("E.T"), "T")});
  even.mode = UnionMode::kUnionDistinct;
  q.relations = {std::move(odd), std::move(even)};
  q.fault_spec = spec;
  q.degree_of_parallelism = TestDop();
  return q;
}

// ---------------------------------------------------------------- budgets

TEST(Governor, UngovernedQueryBuildsNoContext) {
  auto gov = MakeGovernor(ExecLimits{}, CancellationToken(), "none");
  ASSERT_TRUE(gov.ok());
  EXPECT_FALSE(gov->has_value());
}

TEST(Governor, AnyKnobBuildsAContext) {
  ExecLimits limits;
  limits.row_budget = 1;
  auto gov = MakeGovernor(limits, CancellationToken(), "none");
  ASSERT_TRUE(gov.ok());
  EXPECT_TRUE(gov->has_value());
  auto cancelable =
      MakeGovernor(ExecLimits{}, CancellationToken::Create(), "none");
  ASSERT_TRUE(cancelable.ok());
  EXPECT_TRUE(cancelable->has_value());
  auto faulty = MakeGovernor(ExecLimits{}, CancellationToken(), "any:1");
  ASSERT_TRUE(faulty.ok());
  EXPECT_TRUE(faulty->has_value());
}

TEST(Governor, DeadlineTripsWithProgressMetadata) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  // Unbounded union-all TC on a cyclic graph never converges; the
  // governor's deadline is the only thing that stops it.
  auto q = TcQuery(UnionMode::kUnionAll);
  q.governor.deadline_ms = 0.05;
  auto result = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  const ProgressDetail* detail = ProgressDetail::FromStatus(result.status());
  ASSERT_NE(detail, nullptr) << result.status();
  EXPECT_EQ(detail->progress().tripped, "deadline");
  EXPECT_GT(detail->progress().checkpoints, 0u);
  EXPECT_EQ(catalog.TableNames(), before);
}

TEST(Governor, RowBudgetTripsAsResourceExhausted) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  auto q = TcQuery(UnionMode::kUnionDistinct);
  q.governor.row_budget = 5;  // the init projection alone produces 6 rows
  auto result = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  const ProgressDetail* detail = ProgressDetail::FromStatus(result.status());
  ASSERT_NE(detail, nullptr);
  EXPECT_EQ(detail->progress().tripped, "rows");
  EXPECT_GT(detail->progress().rows_produced, 5u);
  EXPECT_EQ(catalog.TableNames(), before);
}

TEST(Governor, ByteBudgetTripsAsResourceExhausted) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  auto q = TcQuery(UnionMode::kUnionDistinct);
  q.governor.byte_budget = 16;  // any materialized table exceeds this
  auto result = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  const ProgressDetail* detail = ProgressDetail::FromStatus(result.status());
  ASSERT_NE(detail, nullptr);
  EXPECT_EQ(detail->progress().tripped, "bytes");
  EXPECT_EQ(catalog.TableNames(), before);
}

TEST(Governor, IterationCapIsAnErrorUnlikeMaxrecursion) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  // The governor cap fails the query...
  auto governed = TcQuery(UnionMode::kUnionDistinct);
  governed.governor.iteration_cap = 2;
  auto gres = ExecuteWithPlus(governed, catalog, OracleLike());
  ASSERT_FALSE(gres.ok());
  EXPECT_EQ(gres.status().code(), StatusCode::kResourceExhausted);
  const ProgressDetail* detail = ProgressDetail::FromStatus(gres.status());
  ASSERT_NE(detail, nullptr);
  EXPECT_EQ(detail->progress().tripped, "iterations");
  EXPECT_EQ(detail->progress().iterations, 2u);
  EXPECT_EQ(catalog.TableNames(), before);
  // ...while the maxrecursion hint stops quietly with a partial result.
  auto hinted = TcQuery(UnionMode::kUnionDistinct);
  hinted.maxrecursion = 2;
  auto hres = ExecuteWithPlus(hinted, catalog, OracleLike());
  ASSERT_TRUE(hres.ok()) << hres.status();
  EXPECT_FALSE(hres->converged);
  EXPECT_EQ(hres->iterations, 2u);
  EXPECT_EQ(catalog.TableNames(), before);
}

TEST(Governor, GenerousBudgetsDoNotChangeTheResult) {
  auto catalog = MakeCatalog(TinyGraph());
  auto plain = ExecuteWithPlus(TcQuery(UnionMode::kUnionDistinct), catalog,
                               OracleLike());
  ASSERT_TRUE(plain.ok()) << plain.status();
  auto q = TcQuery(UnionMode::kUnionDistinct);
  q.governor.deadline_ms = 60000;
  q.governor.row_budget = 1000000;
  q.governor.byte_budget = 1ull << 30;
  q.governor.iteration_cap = 1000;
  auto governed = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_TRUE(governed.ok()) << governed.status();
  EXPECT_TRUE(governed->converged);
  EXPECT_TRUE(governed->table.SameRowsAs(plain->table));
}

// ----------------------------------------------------------- cancellation

TEST(Governor, PreCancelledTokenFailsImmediately) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  auto q = TcQuery(UnionMode::kUnionDistinct);
  q.cancel = CancellationToken::Create();
  q.cancel.RequestCancel();
  auto result = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  const ProgressDetail* detail = ProgressDetail::FromStatus(result.status());
  ASSERT_NE(detail, nullptr);
  EXPECT_EQ(detail->progress().tripped, "cancelled");
  EXPECT_EQ(catalog.TableNames(), before);
}

TEST(Governor, InjectedMidRunCancellationIsCancelled) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  // cancel:<n> flips the token at the n-th checkpoint — a deterministic
  // stand-in for a user hitting ctrl-C mid-fixpoint.
  auto q = TcQuery(UnionMode::kUnionDistinct, "cancel:7");
  auto result = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(catalog.TableNames(), before);
}

// -------------------------------------------------------- fault injection

TEST(FaultInjection, SpecParsing) {
  EXPECT_TRUE(FaultInjector::FromSpec("any:1").ok());
  EXPECT_TRUE(FaultInjector::FromSpec("anti_join:3").ok());
  EXPECT_TRUE(FaultInjector::FromSpec("join:2,cancel:9").ok());
  EXPECT_TRUE(FaultInjector::FromSpec("rate:0.5,seed:7").ok());
  for (const char* bad :
       {"join", "join:0", "join:-2", "join:x", "rate:150", ":3", "rate:"}) {
    auto r = FaultInjector::FromSpec(bad);
    EXPECT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
  }
  // A malformed spec fails governor construction, not execution.
  auto gov = MakeGovernor(ExecLimits{}, CancellationToken(), "join:zero");
  EXPECT_EQ(gov.status().code(), StatusCode::kInvalidArgument);
}

TEST(FaultInjection, NthCheckpointFailsDeterministically) {
  auto run = [](const std::string& spec) {
    auto catalog = MakeCatalog(TinyGraph());
    return ExecuteWithPlus(TcQuery(UnionMode::kUnionDistinct, spec), catalog,
                           OracleLike());
  };
  auto first = run("any:3");
  auto second = run("any:3");
  ASSERT_FALSE(first.ok());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kExecutionError);
  // Deterministic: same spec, same query — identical failure.
  EXPECT_EQ(first.status().ToString(), second.status().ToString());
  EXPECT_NE(first.status().ToString().find("injected fault"),
            std::string::npos);
}

TEST(FaultInjection, SiteDirectiveHitsOnlyThatOperator) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  auto joined =
      ExecuteWithPlus(TcQuery(UnionMode::kUnionDistinct, "join:1"), catalog,
                      OracleLike());
  ASSERT_FALSE(joined.ok());
  EXPECT_NE(joined.status().ToString().find("'join'"), std::string::npos);
  EXPECT_EQ(catalog.TableNames(), before);
  // TC contains no anti-join, so an anti_join directive never fires.
  auto untouched =
      ExecuteWithPlus(TcQuery(UnionMode::kUnionDistinct, "anti_join:1"),
                      catalog, OracleLike());
  ASSERT_TRUE(untouched.ok()) << untouched.status();
  EXPECT_TRUE(untouched->converged);
  EXPECT_EQ(catalog.TableNames(), before);
}

TEST(FaultInjection, RateHundredPercentFailsFirstCheckpoint) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  auto result =
      ExecuteWithPlus(TcQuery(UnionMode::kUnionDistinct, "rate:100"), catalog,
                      OracleLike());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
  EXPECT_EQ(catalog.TableNames(), before);
}

// The tentpole hygiene property: fault every checkpoint of the run, one at
// a time, and require a clean Status and an unchanged catalog every time.
TEST(FaultInjection, SweepLeavesCatalogCleanAtEveryBoundary) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  bool succeeded = false;
  int failures = 0;
  for (int n = 1; n <= 500; ++n) {
    auto q = TcQuery(UnionMode::kUnionDistinct,
                     "any:" + std::to_string(n));
    auto result = ExecuteWithPlus(q, catalog, OracleLike());
    ASSERT_EQ(catalog.TableNames(), before) << "leak at checkpoint " << n;
    if (result.ok()) {
      // The n-th checkpoint was never reached: the run completed, so the
      // whole checkpoint range has been swept.
      EXPECT_TRUE(result->converged);
      succeeded = true;
      break;
    }
    ++failures;
    EXPECT_EQ(result.status().code(), StatusCode::kExecutionError)
        << result.status();
  }
  EXPECT_TRUE(succeeded) << "run still failing after 500 checkpoints";
  EXPECT_GT(failures, 3) << "sweep too short to mean anything";
}

TEST(FaultInjection, SweepLeavesMutualRecursionClean) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  bool succeeded = false;
  for (int n = 1; n <= 500; ++n) {
    auto result = ExecuteMutual(EvenOddQuery("any:" + std::to_string(n)),
                                catalog, OracleLike());
    ASSERT_EQ(catalog.TableNames(), before) << "leak at checkpoint " << n;
    if (result.ok()) {
      succeeded = true;
      break;
    }
  }
  EXPECT_TRUE(succeeded);
}

TEST(FaultInjection, EnvironmentDrivesDefaultSpec) {
  ScopedFaultsEnv env("any:1");
  auto catalog = MakeCatalog(TinyGraph());
  // fault_spec "" consults GPR_FAULTS...
  auto q = TcQuery(UnionMode::kUnionDistinct, "");
  auto injected = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_FALSE(injected.ok());
  EXPECT_EQ(injected.status().code(), StatusCode::kExecutionError);
  // ..."none" shields a query from the environment.
  auto shielded =
      ExecuteWithPlus(TcQuery(UnionMode::kUnionDistinct, "none"), catalog,
                      OracleLike());
  EXPECT_TRUE(shielded.ok()) << shielded.status();
}

// The property the CI fault matrix exercises: under ANY ambient GPR_FAULTS
// spec, a with+ run either succeeds or fails with a clean governed Status —
// and never leaks catalog state.
TEST(FaultInjection, AmbientFaultsNeverLeakOrAbort) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  for (int round = 0; round < 3; ++round) {
    auto with_plus =
        ExecuteWithPlus(TcQuery(UnionMode::kUnionDistinct, ""), catalog,
                        OracleLike());
    if (!with_plus.ok()) {
      const auto code = with_plus.status().code();
      EXPECT_TRUE(code == StatusCode::kExecutionError ||
                  code == StatusCode::kCancelled)
          << with_plus.status();
    }
    EXPECT_EQ(catalog.TableNames(), before);
    auto mutual = ExecuteMutual(EvenOddQuery(""), catalog, OracleLike());
    EXPECT_EQ(catalog.TableNames(), before);
    (void)mutual;
  }
}

// ----------------------------------------------------------- governed APIs

TEST(Governor, MutualRecursionHonorsIterationCap) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  auto q = EvenOddQuery();
  q.governor.iteration_cap = 1;
  auto result = ExecuteMutual(q, catalog, OracleLike());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  const ProgressDetail* detail = ProgressDetail::FromStatus(result.status());
  ASSERT_NE(detail, nullptr);
  EXPECT_EQ(detail->progress().tripped, "iterations");
  EXPECT_EQ(catalog.TableNames(), before);
}

TEST(Governor, AlgoOptionsThreadGovernanceThrough) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  algos::AlgoOptions opt;
  opt.fault_spec = "none";
  opt.cancel = CancellationToken::Create();
  opt.cancel.RequestCancel();
  auto result = algos::TransitiveClosure(catalog, opt);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(catalog.TableNames(), before);
  opt.cancel = CancellationToken();
  opt.governor.iteration_cap = 1;
  opt.csr_kernels = TestKernels();
  opt.vectorized = TestVectorize();
  auto capped = algos::Wcc(catalog, opt);
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(catalog.TableNames(), before);
}

// ------------------------------------------------------------ SQL surface

TEST(GovernorSql, OptionsParseInAnyOrder) {
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) maxbytes 4096 maxrecursion 3 maxtime 250 "
      "maxrows 77)");
  ASSERT_TRUE(ast.ok()) << ast.status();
  EXPECT_EQ(ast->maxrecursion, 3);
  EXPECT_EQ(ast->maxtime_ms, 250);
  EXPECT_EQ(ast->maxrows, 77);
  EXPECT_EQ(ast->maxbytes, 4096);
}

TEST(GovernorSql, DuplicateOptionIsAParseError) {
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) maxrows 1 maxrows 2)");
  ASSERT_FALSE(ast.ok());
  EXPECT_EQ(ast.status().code(), StatusCode::kParseError);
}

TEST(GovernorSql, BinderMapsOptionsOntoLimits) {
  auto catalog = MakeCatalog(TinyGraph());
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) maxtime 1500 maxrows 42 maxbytes 1024)");
  ASSERT_TRUE(ast.ok()) << ast.status();
  auto bound = sql::BindWithStatement(*ast, catalog);
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_DOUBLE_EQ(bound->query.governor.deadline_ms, 1500.0);
  EXPECT_EQ(bound->query.governor.row_budget, 42u);
  EXPECT_EQ(bound->query.governor.byte_budget, 1024u);
  EXPECT_TRUE(bound->query.governor.Any());
}

TEST(GovernorSql, MaxrowsFailsTheStatementWhenTripped) {
  ScopedFaultsEnv env(nullptr);  // isolate from the CI fault matrix
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  auto result = sql::RunSql(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) maxrows 3)",
      catalog, OracleLike());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(catalog.TableNames(), before);
  // Without the hint, the same statement completes.
  auto plain = sql::RunSql(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F))",
      catalog, OracleLike());
  EXPECT_TRUE(plain.ok()) << plain.status();
}

// --------------------------------------------------------- TempTableScope

TEST(TempTableScope, DropsTrackedTablesOnExit) {
  ra::Catalog catalog;
  const auto before = catalog.TableNames();
  {
    ra::TempTableScope scope(catalog);
    ASSERT_TRUE(
        scope.Create("tmp_a", Schema{{"x", ValueType::kInt64}}).ok());
    ASSERT_TRUE(
        scope.Create("tmp_b", Schema{{"y", ValueType::kDouble}}).ok());
    EXPECT_EQ(scope.NumTracked(), 2u);
    EXPECT_TRUE(catalog.Has("tmp_a"));
    EXPECT_TRUE(catalog.Has("tmp_b"));
  }
  EXPECT_FALSE(catalog.Has("tmp_a"));
  EXPECT_FALSE(catalog.Has("tmp_b"));
  EXPECT_EQ(catalog.TableNames(), before);
}

TEST(TempTableScope, ToleratesAlreadyDroppedTables) {
  ra::Catalog catalog;
  {
    ra::TempTableScope scope(catalog);
    ASSERT_TRUE(
        scope.Create("tmp_gone", Schema{{"x", ValueType::kInt64}}).ok());
    ASSERT_TRUE(catalog.DropTable("tmp_gone").ok());
  }  // must not blow up on the missing table
  EXPECT_FALSE(catalog.Has("tmp_gone"));
}

TEST(TempTableScope, CreateReportsBaseTableCollisions) {
  ra::Catalog catalog;
  ra::Table base("base", Schema{{"x", ValueType::kInt64}});
  ASSERT_TRUE(catalog.CreateTable(std::move(base)).ok());
  ra::TempTableScope scope(catalog);
  // A temp table may not shadow a base table; the failed create is not
  // tracked, so the base table survives the scope.
  Status st = scope.Create("base", Schema{{"x", ValueType::kInt64}});
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(scope.NumTracked(), 0u);
}

TEST(TempTableScope, BaseTablesSurviveTheScope) {
  ra::Catalog catalog;
  ra::Table base("keepme", Schema{{"x", ValueType::kInt64}});
  ASSERT_TRUE(catalog.CreateTable(std::move(base)).ok());
  {
    ra::TempTableScope scope(catalog);
    ASSERT_TRUE(
        scope.Create("tmp_c", Schema{{"x", ValueType::kInt64}}).ok());
  }
  EXPECT_TRUE(catalog.Has("keepme"));
  EXPECT_FALSE(catalog.Has("tmp_c"));
}

}  // namespace
}  // namespace gpr
