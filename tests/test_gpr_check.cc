// Fixture tests for the gpr_check linter (tools/gpr_check): one
// known-good and one known-bad snippet per rule, run through
// CheckSourceText so the rules are exercised exactly as the CLI applies
// them — path-based applicability included. The snippets are minimal by
// design; the real sources under src/ are the integration fixture (CI
// runs `gpr_check src bench examples tools` and requires zero findings).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "gpr_check/gpr_check.h"

namespace gpr::check {
namespace {

std::vector<std::string> Codes(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const auto& f : findings) out.push_back(f.code);
  return out;
}

bool Has(const std::vector<Finding>& findings, const std::string& code) {
  const auto codes = Codes(findings);
  return std::find(codes.begin(), codes.end(), code) != codes.end();
}

// ---------------------------------------------------------------------------
// GPR-C400 — Table mutators bump the version exactly once.

TEST(GprCheckC400, MutatorWithSingleBumpIsClean) {
  const auto f = CheckSourceText("src/ra/table.cc",
                                 "#pragma once\n"  // not a header; harmless
                                 "void Table::AddRow(Tuple t) {\n"
                                 "  rows_.push_back(std::move(t));\n"
                                 "  BumpVersion();\n"
                                 "}\n");
  EXPECT_FALSE(Has(f, "GPR-C400")) << FindingsToJson(f);
}

TEST(GprCheckC400, MutatorWithoutBumpFires) {
  const auto f = CheckSourceText("src/ra/table.cc",
                                 "void Table::AddRow(Tuple t) {\n"
                                 "  rows_.push_back(std::move(t));\n"
                                 "}\n");
  EXPECT_TRUE(Has(f, "GPR-C400")) << FindingsToJson(f);
}

TEST(GprCheckC400, MutatorWithDoubleBumpFires) {
  const auto f = CheckSourceText("src/ra/table.cc",
                                 "void Table::Clear() {\n"
                                 "  rows_.clear();\n"
                                 "  BumpVersion();\n"
                                 "  BumpVersion();\n"
                                 "}\n");
  EXPECT_TRUE(Has(f, "GPR-C400")) << FindingsToJson(f);
}

TEST(GprCheckC400, OnlyAppliesToTableCc) {
  // The same shape elsewhere is not a Table mutator.
  const auto f = CheckSourceText("src/core/plan.cc",
                                 "void Table::AddRow(Tuple t) {\n"
                                 "  rows_.push_back(std::move(t));\n"
                                 "}\n");
  EXPECT_FALSE(Has(f, "GPR-C400")) << FindingsToJson(f);
}

// ---------------------------------------------------------------------------
// GPR-C401 — row loops in ra/ operator code carry a governor poll.

TEST(GprCheckC401, PolledRowLoopIsClean) {
  const auto f = CheckSourceText(
      "src/ra/operators.cc",
      "Status F(const Table& in, EvalContext* ctx) {\n"
      "  size_t i = 0;\n"
      "  for (const Tuple& t : in.rows()) {\n"
      "    GPR_RETURN_NOT_OK(PollGovernor(ctx, i++, \"f\"));\n"
      "    Use(t);\n"
      "  }\n"
      "  return Status::OK();\n"
      "}\n");
  EXPECT_FALSE(Has(f, "GPR-C401")) << FindingsToJson(f);
}

TEST(GprCheckC401, UnpolledRowLoopFires) {
  const auto f =
      CheckSourceText("src/ra/operators.cc",
                      "void F(const Table& in) {\n"
                      "  for (const Tuple& t : in.rows()) Use(t);\n"
                      "}\n");
  EXPECT_TRUE(Has(f, "GPR-C401")) << FindingsToJson(f);
}

TEST(GprCheckC401, MorselLoopIsClean) {
  // Loops inside RunMorsels(...) poll per morsel; the rule must not fire.
  const auto f = CheckSourceText(
      "src/ra/operators.cc",
      "Status F(EvalContext* ctx, const Table& in, int dop) {\n"
      "  return RunMorsels(ctx, in.NumRows(), dop, \"f\",\n"
      "      [&](size_t, size_t begin, size_t end) {\n"
      "        for (size_t i = begin; i < end; ++i) Use(in.row(i));\n"
      "        return Status::OK();\n"
      "      });\n"
      "}\n");
  EXPECT_FALSE(Has(f, "GPR-C401")) << FindingsToJson(f);
}

TEST(GprCheckC401, SuppressionCommentIsHonoured) {
  const auto f = CheckSourceText(
      "src/ra/table_io.cc",
      "void F(const Table& in) {\n"
      "  // gpr_check(disable: GPR-C401): export path, ungoverned\n"
      "  for (const auto& row : in.rows()) Write(row);\n"
      "}\n");
  EXPECT_FALSE(Has(f, "GPR-C401")) << FindingsToJson(f);
}

// ---------------------------------------------------------------------------
// GPR-C402 — raw std::mutex & friends outside the gpr::Mutex wrapper.

TEST(GprCheckC402, WrapperMutexIsClean) {
  const auto f = CheckSourceText("src/exec/thing.h",
                                 "#pragma once\n"
                                 "struct S {\n"
                                 "  Mutex mu_;\n"
                                 "  int x GPR_GUARDED_BY(mu_) = 0;\n"
                                 "};\n");
  EXPECT_FALSE(Has(f, "GPR-C402")) << FindingsToJson(f);
}

TEST(GprCheckC402, RawStdMutexFires) {
  const auto f = CheckSourceText("src/exec/thing.h",
                                 "#pragma once\n"
                                 "struct S { std::mutex mu_; };\n");
  EXPECT_TRUE(Has(f, "GPR-C402")) << FindingsToJson(f);
}

TEST(GprCheckC402, RawLockGuardFires) {
  const auto f = CheckSourceText(
      "src/ra/thing.cc",
      "void F() { std::lock_guard<std::mutex> lock(mu_); }\n");
  EXPECT_TRUE(Has(f, "GPR-C402")) << FindingsToJson(f);
}

TEST(GprCheckC402, WrapperImplementationIsExempt) {
  // util/mutex.h legitimately wraps std::mutex.
  const auto f = CheckSourceText("src/util/mutex.h",
                                 "#pragma once\n"
                                 "class Mutex { std::mutex mu_; };\n");
  EXPECT_FALSE(Has(f, "GPR-C402")) << FindingsToJson(f);
}

// ---------------------------------------------------------------------------
// GPR-C403 — (void)-discarded call results need a justification comment.

TEST(GprCheckC403, JustifiedDiscardIsClean) {
  const auto f = CheckSourceText(
      "src/core/thing.cc",
      "void F() {\n"
      "  // Best-effort: failure only means the temp was already gone.\n"
      "  (void)catalog.DropTable(name);\n"
      "}\n");
  EXPECT_FALSE(Has(f, "GPR-C403")) << FindingsToJson(f);
}

TEST(GprCheckC403, BareDiscardFires) {
  const auto f =
      CheckSourceText("src/core/thing.cc",
                      "void F() {\n"
                      "  (void)catalog.DropTable(name);\n"
                      "}\n");
  EXPECT_TRUE(Has(f, "GPR-C403")) << FindingsToJson(f);
}

TEST(GprCheckC403, NonCallCastIsClean) {
  // Silencing an unused parameter is not a status discard.
  const auto f = CheckSourceText("src/core/thing.cc",
                                 "void F(int unused) { (void)unused; }\n");
  EXPECT_FALSE(Has(f, "GPR-C403")) << FindingsToJson(f);
}

// ---------------------------------------------------------------------------
// GPR-C404 — temp-table cleanup goes through TempTableScope, not loops.

TEST(GprCheckC404, ScopeBasedCleanupIsClean) {
  const auto f = CheckSourceText(
      "src/algos/thing.cc",
      "void F(ra::Catalog& catalog, const std::vector<std::string>& ns) {\n"
      "  ra::TempTableScope scope(catalog);\n"
      "  for (const auto& n : ns) scope.Track(n);\n"
      "}\n");
  EXPECT_FALSE(Has(f, "GPR-C404")) << FindingsToJson(f);
}

TEST(GprCheckC404, LoopDropFires) {
  const auto f = CheckSourceText(
      "src/algos/thing.cc",
      "void F(ra::Catalog& catalog, const std::vector<std::string>& ns) {\n"
      "  // loop-drop: leaks on the paths between the drops\n"
      "  for (const auto& n : ns) (void)catalog.DropTable(n);\n"
      "}\n");
  EXPECT_TRUE(Has(f, "GPR-C404")) << FindingsToJson(f);
}

TEST(GprCheckC404, ScopeDestructorIsExempt) {
  // ra/catalog.{h,cc} hold the one legitimate drop loop (the scope's own
  // destructor).
  const auto f = CheckSourceText(
      "src/ra/catalog.h",
      "#pragma once\n"
      "struct S {\n"
      "  ~S() {\n"
      "    // NotFound is fine here.\n"
      "    for (auto& n : names_) (void)catalog_.DropTable(n);\n"
      "  }\n"
      "};\n");
  EXPECT_FALSE(Has(f, "GPR-C404")) << FindingsToJson(f);
}

// ---------------------------------------------------------------------------
// GPR-C405 — no wall-clock or libc randomness in operator code.

TEST(GprCheckC405, DeterministicOperatorIsClean) {
  const auto f = CheckSourceText(
      "src/ra/thing.cc",
      "size_t F(const Tuple& t) { return TupleHash{}(t); }\n");
  EXPECT_FALSE(Has(f, "GPR-C405")) << FindingsToJson(f);
}

TEST(GprCheckC405, RandFires) {
  const auto f = CheckSourceText("src/ra/thing.cc",
                                 "size_t F() { return rand() % 7; }\n");
  EXPECT_TRUE(Has(f, "GPR-C405")) << FindingsToJson(f);
}

TEST(GprCheckC405, TimeNullFires) {
  const auto f = CheckSourceText(
      "src/core/thing.cc", "long F() { return time(nullptr); }\n");
  EXPECT_TRUE(Has(f, "GPR-C405")) << FindingsToJson(f);
}

TEST(GprCheckC405, IdentifierSuffixIsClean) {
  // `operand()`, `my_rand()`… must not match: the pattern is word-bounded.
  const auto f = CheckSourceText("src/ra/thing.cc",
                                 "int F() { return my_rand(); }\n");
  EXPECT_FALSE(Has(f, "GPR-C405")) << FindingsToJson(f);
}

// ---------------------------------------------------------------------------
// GPR-C406 — bench JSON emitters go through BenchJsonWriter with counters.

TEST(GprCheckC406, WriterWithCountersIsClean) {
  const auto f = CheckSourceText(
      "bench/bench_thing.cc",
      "void Emit(const std::vector<BenchRecord>& rs) {\n"
      "  BenchJsonWriter w(\"BENCH_thing.json\");\n"
      "  for (const auto& r : rs) w.Add(r);  // carries cache_hits et al.\n"
      "}\n"
      "size_t cache_hits = 0;\n");
  EXPECT_FALSE(Has(f, "GPR-C406")) << FindingsToJson(f);
}

TEST(GprCheckC406, HandRolledEmitterFires) {
  const auto f = CheckSourceText(
      "bench/bench_thing.cc",
      "void Emit() {\n"
      "  FILE* f = fopen(\"BENCH_thing.json\", \"w\");\n"
      "  fprintf(f, \"[]\");\n"
      "  fclose(f);\n"
      "}\n");
  EXPECT_TRUE(Has(f, "GPR-C406")) << FindingsToJson(f);
}

// ---------------------------------------------------------------------------
// GPR-C407 — headers open with #pragma once.

TEST(GprCheckC407, PragmaOnceHeaderIsClean) {
  const auto f = CheckSourceText("src/core/thing.h",
                                 "// File comment.\n"
                                 "#pragma once\n"
                                 "struct S {};\n");
  EXPECT_FALSE(Has(f, "GPR-C407")) << FindingsToJson(f);
}

TEST(GprCheckC407, MissingPragmaFires) {
  const auto f = CheckSourceText("src/core/thing.h",
                                 "// File comment.\n"
                                 "struct S {};\n");
  EXPECT_TRUE(Has(f, "GPR-C407")) << FindingsToJson(f);
}

TEST(GprCheckC407, IncludeGuardInsteadOfPragmaFires) {
  const auto f = CheckSourceText("src/core/thing.h",
                                 "#ifndef GPR_CORE_THING_H_\n"
                                 "#define GPR_CORE_THING_H_\n"
                                 "struct S {};\n"
                                 "#endif\n");
  EXPECT_TRUE(Has(f, "GPR-C407")) << FindingsToJson(f);
}

TEST(GprCheckC407, DoesNotApplyToSourceFiles) {
  const auto f =
      CheckSourceText("src/core/thing.cc", "struct S {};\n");
  EXPECT_FALSE(Has(f, "GPR-C407")) << FindingsToJson(f);
}

// ---------------------------------------------------------------------------
// GPR-C408 — table_io writes go through AtomicWriteFile, never raw streams.

TEST(GprCheckC408, AtomicWriteIsClean) {
  const auto f = CheckSourceText(
      "src/ra/table_io.cc",
      "Status SaveCsv(const Table& t, const std::string& path) {\n"
      "  std::ostringstream out;\n"
      "  out << t.ToString(0);\n"
      "  return AtomicWriteFile(path, out.str());\n"
      "}\n");
  EXPECT_FALSE(Has(f, "GPR-C408")) << FindingsToJson(f);
}

TEST(GprCheckC408, RawOfstreamFires) {
  const auto f = CheckSourceText(
      "src/ra/table_io.cc",
      "Status SaveCsv(const Table& t, const std::string& path) {\n"
      "  std::ofstream out(path);\n"
      "  out << t.ToString(0);\n"
      "  return Status::OK();\n"
      "}\n");
  EXPECT_TRUE(Has(f, "GPR-C408")) << FindingsToJson(f);
}

TEST(GprCheckC408, FopenFires) {
  const auto f = CheckSourceText(
      "src/ra/table_io.cc",
      "void Dump(const char* path) { FILE* f = fopen(path, \"w\"); }\n");
  EXPECT_TRUE(Has(f, "GPR-C408")) << FindingsToJson(f);
}

TEST(GprCheckC408, ReadsViaIfstreamAreExempt) {
  // Reads cannot tear the file; only the write path must be atomic.
  const auto f = CheckSourceText(
      "src/ra/table_io.cc",
      "Result<Table> LoadCsv(const std::string& path) {\n"
      "  std::ifstream in(path);\n"
      "  return Table{};\n"
      "}\n");
  EXPECT_FALSE(Has(f, "GPR-C408")) << FindingsToJson(f);
}

TEST(GprCheckC408, OnlyAppliesToTableIo) {
  const auto f = CheckSourceText(
      "src/core/thing.cc",
      "void Dump(const char* path) { std::ofstream out(path); }\n");
  EXPECT_FALSE(Has(f, "GPR-C408")) << FindingsToJson(f);
}

// GPR-C409 — cached CSR layouts are keyed on table content versions.

TEST(GprCheckC409, VersionedCacheCallsAreClean) {
  const auto f = CheckSourceText(
      "src/ra/csr.cc",
      "std::shared_ptr<const CsrMatrix> hit =\n"
      "    cache->Lookup<CsrMatrix>(key, m.version());\n"
      "GPR_RETURN_NOT_OK(cache->Insert<CsrMatrix>(key, mversion, built,\n"
      "                                           built->ApproxBytes()));\n");
  EXPECT_FALSE(Has(f, "GPR-C409")) << FindingsToJson(f);
}

TEST(GprCheckC409, UnversionedLookupFires) {
  const auto f = CheckSourceText(
      "src/ra/csr.cc",
      "std::shared_ptr<const CsrMatrix> hit =\n"
      "    cache->Lookup<CsrMatrix>(key, 0);\n");
  EXPECT_TRUE(Has(f, "GPR-C409")) << FindingsToJson(f);
}

TEST(GprCheckC409, UnversionedInsertFires) {
  const auto f = CheckSourceText(
      "src/ra/csr.cc",
      "Status S(PlanCache* cache, std::shared_ptr<const CsrMatrix> built) {\n"
      "  return cache->Insert<CsrMatrix>(\"csr:E\", 7, built, 64);\n"
      "}\n");
  EXPECT_TRUE(Has(f, "GPR-C409")) << FindingsToJson(f);
}

TEST(GprCheckC409, OtherArtifactKindsAreExempt) {
  // Only CsrMatrix entries are pinned; other cache users carry their own
  // keying conventions (and their own rules when they need them).
  const auto f = CheckSourceText(
      "src/ra/csr.cc",
      "struct CsrMatrix;\n"
      "auto hit = cache->Lookup<HashIndex>(key, 0);\n");
  EXPECT_FALSE(Has(f, "GPR-C409")) << FindingsToJson(f);
}

// GPR-C410 — ColumnStore growth goes through the batch API and is sealed
// by FinishRows() before the store is read or adopted.

TEST(GprCheckC410, SealedBatchGrowthIsClean) {
  const auto f = CheckSourceText(
      "src/ra/vectorized.cc",
      "void Fill(ColumnStore* built) {\n"
      "  ColumnVec* col = built->mutable_column(0);\n"
      "  col->AppendInt64(1);\n"
      "  built->FinishRows();\n"
      "}\n");
  EXPECT_FALSE(Has(f, "GPR-C410")) << FindingsToJson(f);
}

TEST(GprCheckC410, UnsealedMutableColumnFires) {
  const auto f = CheckSourceText(
      "src/core/some_operator.cc",
      "void Fill(ColumnStore* built) {\n"
      "  built->mutable_column(0)->AppendInt64(1);\n"
      "}\n");
  EXPECT_TRUE(Has(f, "GPR-C410")) << FindingsToJson(f);
}

TEST(GprCheckC410, ColumnStoreImplementationIsExempt) {
  const auto f = CheckSourceText(
      "src/ra/column.h",
      "ColumnVec* mutable_column(size_t c) { return &cols_[c]; }\n");
  EXPECT_FALSE(Has(f, "GPR-C410")) << FindingsToJson(f);
}

TEST(GprCheckC408, SuppressionCommentIsHonoured) {
  const auto f = CheckSourceText(
      "src/ra/table_io.cc",
      "// gpr_check(disable: GPR-C408): scratch file, torn writes are fine\n"
      "void Dump(const char* path) { std::ofstream out(path); }\n");
  EXPECT_FALSE(Has(f, "GPR-C408")) << FindingsToJson(f);
}

// ---------------------------------------------------------------------------
// Preprocessing — the comment/literal stripper behind every rule.

TEST(GprCheckPrepare, CommentedViolationsDoNotFire) {
  const auto f = CheckSourceText(
      "src/ra/thing.cc",
      "// size_t F() { return rand(); }\n"
      "/* std::mutex mu_; */\n"
      "int x = 0;\n");
  EXPECT_TRUE(f.empty()) << FindingsToJson(f);
}

TEST(GprCheckPrepare, StringLiteralViolationsDoNotFire) {
  const auto f = CheckSourceText(
      "src/ra/thing.cc",
      "const char* kDoc = \"never call rand() or std::mutex\";\n");
  EXPECT_TRUE(f.empty()) << FindingsToJson(f);
}

TEST(GprCheckPrepare, LineNumbersSurviveStripping) {
  const auto f = CheckSourceText("src/ra/thing.cc",
                                 "/* multi\n"
                                 "   line\n"
                                 "   comment */\n"
                                 "size_t F() { return rand(); }\n");
  ASSERT_EQ(f.size(), 1u) << FindingsToJson(f);
  EXPECT_EQ(f[0].code, "GPR-C405");
  EXPECT_EQ(f[0].line, 4u);
}

// ---------------------------------------------------------------------------
// Output shapes.

TEST(GprCheckOutput, JsonIsWellFormedAndSorted) {
  // Two rules firing in one snippet: findings come back sorted by line.
  const auto f = CheckSourceText("src/ra/thing.cc",
                                 "void F(const Table& in) {\n"
                                 "  for (const Tuple& t : in.rows()) Use(t);\n"
                                 "  (void)Drop(t);\n"
                                 "}\n");
  ASSERT_EQ(f.size(), 2u) << FindingsToJson(f);
  EXPECT_EQ(f[0].code, "GPR-C401");
  EXPECT_EQ(f[1].code, "GPR-C403");
  EXPECT_LT(f[0].line, f[1].line);
  const std::string json = FindingsToJson(f);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"code\": \"GPR-C401\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"file\": \"src/ra/thing.cc\""), std::string::npos)
      << json;
}

TEST(GprCheckOutput, FindingToStringCarriesLocation) {
  const auto f = CheckSourceText("src/ra/thing.cc",
                                 "int F() { return rand(); }\n");
  ASSERT_EQ(f.size(), 1u);
  const std::string s = f[0].ToString();
  EXPECT_NE(s.find("src/ra/thing.cc:1"), std::string::npos) << s;
  EXPECT_NE(s.find("GPR-C405"), std::string::npos) << s;
}

// The repo's own sources are the ultimate fixture: CI runs the binary over
// src/bench/examples/tools and fails on any finding, so every rule stays
// demonstrably clean against real code (see .github/workflows/ci.yml).

}  // namespace
}  // namespace gpr::check
