// Tests for the graph substrate: CSR structure, generators, Table 3
// dataset analogues, IO round-trips, and relation conversion.
#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/relations.h"
#include "test_util.h"

namespace gpr::graph {
namespace {

TEST(Graph, CsrAdjacencyIsConsistent) {
  Graph g = gpr::testing::TinyGraph();
  EXPECT_EQ(g.num_nodes(), 6);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(2), 2u);
  // Every out-edge appears as the mirror in-edge.
  size_t mirrored = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      const auto in = g.InNeighbors(w);
      mirrored += std::count(in.begin(), in.end(), v);
    }
  }
  EXPECT_EQ(mirrored, g.num_edges());
}

TEST(Graph, SymmetrizeAndDedupe) {
  std::vector<Edge> edges = {{0, 1, 1.0}, {1, 0, 1.0}, {0, 1, 2.0},
                             {2, 2, 1.0}};
  auto clean = DedupeEdges(edges);
  // Self-loop dropped; parallel (0,1) collapsed.
  EXPECT_EQ(clean.size(), 2u);
  auto sym = DedupeEdges(Symmetrize(clean));
  EXPECT_EQ(sym.size(), 2u);  // both directions already present
}

TEST(Generators, ErdosRenyiRespectsBounds) {
  Graph g = ErdosRenyi(100, 400, 1);
  EXPECT_EQ(g.num_nodes(), 100);
  EXPECT_LE(g.num_edges(), 400u);
  EXPECT_GT(g.num_edges(), 300u);  // few duplicates at this density
  for (const auto& e : g.EdgeList()) {
    EXPECT_NE(e.from, e.to);
  }
}

TEST(Generators, RmatIsSkewed) {
  Graph g = Rmat(1 << 10, 8000, 7);
  // Compare the max out-degree with the average: R-MAT should produce a
  // heavy tail (max >> average), unlike a uniform graph.
  size_t max_deg = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_deg = std::max(max_deg, g.OutDegree(v));
  }
  EXPECT_GT(static_cast<double>(max_deg), 5.0 * g.AverageDegree());
}

TEST(Generators, GeneratorsAreDeterministic) {
  Graph a = Rmat(256, 1000, 42);
  Graph b = Rmat(256, 1000, 42);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  auto ea = a.EdgeList();
  auto eb = b.EdgeList();
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].from, eb[i].from);
    EXPECT_EQ(ea[i].to, eb[i].to);
  }
}

TEST(Generators, RandomDagIsAcyclic) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Graph g = RandomDag(60, 200, seed);
    // Kahn must consume every node.
    std::vector<size_t> indeg(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) indeg[v] = g.InDegree(v);
    std::vector<NodeId> frontier;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (indeg[v] == 0) frontier.push_back(v);
    }
    size_t seen = 0;
    while (!frontier.empty()) {
      NodeId v = frontier.back();
      frontier.pop_back();
      ++seen;
      for (NodeId w : g.OutNeighbors(v)) {
        if (--indeg[w] == 0) frontier.push_back(w);
      }
    }
    EXPECT_EQ(seen, static_cast<size_t>(g.num_nodes())) << "seed " << seed;
  }
}

TEST(Generators, NodeDataAttachment) {
  Graph g = ErdosRenyi(50, 100, 3);
  AttachRandomNodeData(&g, 4, 0.0, 20.0, 10);
  ASSERT_EQ(g.node_weights().size(), 50u);
  ASSERT_EQ(g.node_labels().size(), 50u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_GE(g.node_weights()[v], 0.0);
    EXPECT_LE(g.node_weights()[v], 20.0);
    EXPECT_GE(g.node_labels()[v], 0);
    EXPECT_LT(g.node_labels()[v], 10);
  }
}

TEST(Datasets, Table3RegistryShape) {
  const auto& specs = PaperDatasets();
  ASSERT_EQ(specs.size(), 9u);
  // The first three are the undirected graphs of Table 3.
  EXPECT_FALSE(specs[0].directed);  // YT
  EXPECT_FALSE(specs[1].directed);  // LJ
  EXPECT_FALSE(specs[2].directed);  // OK
  for (size_t i = 3; i < 9; ++i) EXPECT_TRUE(specs[i].directed);
  // Scaled analogues preserve the density ordering of the paper: Google+
  // is the densest, Wiki-Talk the sparsest of the directed graphs.
  auto density = [](const DatasetSpec& s) {
    return static_cast<double>(s.edges) / static_cast<double>(s.nodes);
  };
  auto gp = DatasetByAbbrev("GP");
  auto wt = DatasetByAbbrev("wt");
  ASSERT_TRUE(gp.ok());
  ASSERT_TRUE(wt.ok());
  EXPECT_GT(density(*gp), 100.0);
  EXPECT_LT(density(*wt), 5.0);
}

TEST(Datasets, MaterializationMatchesSpec) {
  auto spec = DatasetByAbbrev("WV");
  ASSERT_TRUE(spec.ok());
  Graph g = MakeDataset(*spec, /*scale=*/0.2);
  EXPECT_GT(g.num_nodes(), 0);
  EXPECT_GT(g.num_edges(), 0u);
  EXPECT_FALSE(g.node_labels().empty());
  EXPECT_FALSE(g.node_weights().empty());
  // Undirected datasets come out symmetric.
  auto yt = DatasetByAbbrev("YT");
  ASSERT_TRUE(yt.ok());
  Graph u = MakeDataset(*yt, 0.05);
  for (NodeId v = 0; v < u.num_nodes() && v < 50; ++v) {
    for (NodeId w : u.OutNeighbors(v)) {
      const auto back = u.OutNeighbors(w);
      EXPECT_NE(std::count(back.begin(), back.end(), v), 0)
          << v << "<->" << w;
    }
  }
  EXPECT_FALSE(DatasetByAbbrev("XX").ok());
}

TEST(GraphIo, EdgeListRoundTrip) {
  Graph g = ErdosRenyi(40, 120, 9);
  const std::string path = ::testing::TempDir() + "/gpr_edges.txt";
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  std::remove(path.c_str());
}

TEST(GraphIo, MissingFileFails) {
  auto loaded = LoadEdgeList("/nonexistent/file.txt");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(Relations, GraphRoundTripsThroughRelations) {
  Graph g = WithRandomEdgeWeights(ErdosRenyi(30, 90, 5), 6, 1.0, 9.0);
  auto e = EdgeRelation(g);
  EXPECT_EQ(e.NumRows(), g.num_edges());
  auto back = GraphFromEdgeRelation(e);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_edges(), g.num_edges());
  auto ea = g.EdgeList();
  auto eb = back->EdgeList();
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].from, eb[i].from);
    EXPECT_EQ(ea[i].to, eb[i].to);
    EXPECT_EQ(ea[i].weight, eb[i].weight);
  }
}

TEST(Relations, RegisterGraphAnalyzesBaseTables) {
  Graph g = ErdosRenyi(20, 50, 2);
  AttachRandomNodeData(&g, 3);
  ra::Catalog catalog;
  ASSERT_TRUE(RegisterGraph(g, &catalog).ok());
  for (const char* name : {"E", "V", "VL"}) {
    auto t = catalog.Get(name);
    ASSERT_TRUE(t.ok()) << name;
    EXPECT_TRUE((*t)->stats().present) << name;
    EXPECT_FALSE(catalog.IsTemporary(name));
  }
  EXPECT_EQ((*catalog.Get("V"))->NumRows(), 20u);
}

}  // namespace
}  // namespace gpr::graph
