// Tests for native mutual recursion (the future-work extension): the
// even/odd path system and HITS expressed as Hub/Authority relations.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <set>

#include "baseline/native_algos.h"
#include "core/mutual.h"
#include "test_util.h"

namespace gpr::core {
namespace {

namespace ops = ra::ops;
using gpr::testing::MakeCatalog;
using gpr::testing::TinyGraph;
using ra::Col;
using ra::Lit;
using ra::Schema;
using ra::ValueType;

/// Even/Odd path reachability:
///   Odd(F,T)  :- E(F,T).            Odd(F,T)  :- Even(F,Z), E(Z,T).
///   Even(F,T) :- Odd(F,Z), E(Z,T).
MutualQuery EvenOddQuery() {
  MutualQuery q;
  MutualRelation odd;
  odd.name = "OddP";
  odd.schema = Schema{{"F", ValueType::kInt64}, {"T", ValueType::kInt64}};
  odd.init = {ProjectOp(Scan("E"), {ops::As(Col("F"), "F"),
                                    ops::As(Col("T"), "T")})};
  odd.recursive.plan =
      ProjectOp(JoinOp(Scan("EvenP"), Scan("E"), {{"T"}, {"F"}}),
                {ops::As(Col("EvenP.F"), "F"), ops::As(Col("E.T"), "T")});
  odd.mode = UnionMode::kUnionDistinct;

  MutualRelation even;
  even.name = "EvenP";
  even.schema = odd.schema;
  // Even paths of length 0 are excluded (start from length 2): initialize
  // with the two-hop pairs.
  even.init = {ProjectOp(
      JoinOp(RenameOp(Scan("E"), "E1"), RenameOp(Scan("E"), "E2"),
             {{"T"}, {"F"}}),
      {ops::As(Col("E1.F"), "F"), ops::As(Col("E2.T"), "T")})};
  even.recursive.plan =
      ProjectOp(JoinOp(Scan("OddP"), Scan("E"), {{"T"}, {"F"}}),
                {ops::As(Col("OddP.F"), "F"), ops::As(Col("E.T"), "T")});
  even.mode = UnionMode::kUnionDistinct;

  q.relations = {std::move(odd), std::move(even)};
  return q;
}

/// Reference: pairs reachable by odd/even-length paths (≥1 / ≥2 hops).
void NativeEvenOdd(const graph::Graph& g,
                   std::set<std::pair<int64_t, int64_t>>* odd,
                   std::set<std::pair<int64_t, int64_t>>* even) {
  const auto n = static_cast<size_t>(g.num_nodes());
  // BFS over the (node, parity) product graph from every source.
  for (graph::NodeId s = 0; s < g.num_nodes(); ++s) {
    std::vector<std::array<bool, 2>> visited(n, {false, false});
    std::vector<std::pair<graph::NodeId, int>> stack{{s, 0}};
    visited[s][0] = true;
    while (!stack.empty()) {
      auto [v, parity] = stack.back();
      stack.pop_back();
      for (graph::NodeId w : g.OutNeighbors(v)) {
        const int p = 1 - parity;
        if (p == 1) {
          odd->insert({s, w});
        } else {
          even->insert({s, w});
        }
        if (!visited[w][p]) {
          visited[w][p] = true;
          stack.emplace_back(w, p);
        }
      }
    }
  }
}

TEST(MutualRecursion, EvenOddPathsMatchNative) {
  auto g = TinyGraph();
  auto catalog = MakeCatalog(g);
  auto result = ExecuteMutual(EvenOddQuery(), catalog, OracleLike());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  ASSERT_EQ(result->tables.size(), 2u);

  std::set<std::pair<int64_t, int64_t>> odd_want;
  std::set<std::pair<int64_t, int64_t>> even_want;
  NativeEvenOdd(g, &odd_want, &even_want);
  std::set<std::pair<int64_t, int64_t>> odd_got;
  for (const auto& row : result->tables[0].rows()) {
    odd_got.insert({row[0].AsInt64(), row[1].AsInt64()});
  }
  std::set<std::pair<int64_t, int64_t>> even_got;
  for (const auto& row : result->tables[1].rows()) {
    even_got.insert({row[0].AsInt64(), row[1].AsInt64()});
  }
  EXPECT_EQ(odd_got, odd_want);
  EXPECT_EQ(even_got, even_want);
}

TEST(MutualRecursion, HubAuthorityAsTwoRelations) {
  // Unnormalized HITS for a fixed number of rounds, Hub/Auth as genuinely
  // mutually recursive relations (the Widom example of Section 6).
  auto g = TinyGraph();
  auto catalog = MakeCatalog(g);
  const int rounds = 4;

  MutualQuery q;
  MutualRelation auth;
  auth.name = "AuthR";
  auth.schema = Schema{{"ID", ValueType::kInt64}, {"a", ValueType::kDouble}};
  auth.init = {ProjectOp(Scan("V"), {ops::As(Col("ID"), "ID"),
                                     ops::As(Lit(1.0), "a")})};
  // a(t) = Σ_{f→t} h(f): Hub is refreshed later, so this reads the
  // previous iteration's hubs (exactly the paper's Hub' trick, natively).
  auth.recursive.plan = ProjectOp(
      GroupByOp(JoinOp(Scan("E"), Scan("HubR"), {{"F"}, {"ID"}}), {"E.T"},
                {ra::SumOf(ra::Mul(Col("HubR.h"), Col("E.ew")), "s")}),
      {ops::As(Col("T"), "ID"), ops::As(Col("s"), "a")});
  auth.mode = UnionMode::kUnionByUpdate;
  auth.update_keys = {"ID"};

  MutualRelation hub;
  hub.name = "HubR";
  hub.schema = Schema{{"ID", ValueType::kInt64}, {"h", ValueType::kDouble}};
  hub.init = {ProjectOp(Scan("V"), {ops::As(Col("ID"), "ID"),
                                    ops::As(Lit(1.0), "h")})};
  // h(f) = Σ_{f→t} a(t): Auth is earlier, so this reads fresh authorities.
  hub.recursive.plan = ProjectOp(
      GroupByOp(JoinOp(Scan("E"), Scan("AuthR"), {{"T"}, {"ID"}}), {"E.F"},
                {ra::SumOf(ra::Mul(Col("AuthR.a"), Col("E.ew")), "s")}),
      {ops::As(Col("F"), "ID"), ops::As(Col("s"), "h")});
  hub.mode = UnionMode::kUnionByUpdate;
  hub.update_keys = {"ID"};

  q.relations = {std::move(auth), std::move(hub)};
  q.maxrecursion = rounds;
  auto result = ExecuteMutual(q, catalog, OracleLike());
  ASSERT_TRUE(result.ok()) << result.status();

  // Native mirror with the same Gauss-Seidel order.
  std::vector<double> a(g.num_nodes(), 1.0);
  std::vector<double> h(g.num_nodes(), 1.0);
  for (int round = 0; round < rounds; ++round) {
    std::vector<double> a2 = a;
    for (graph::NodeId t = 0; t < g.num_nodes(); ++t) {
      if (g.InDegree(t) == 0) continue;
      double sum = 0;
      for (graph::NodeId f : g.InNeighbors(t)) sum += h[f];
      a2[t] = sum;
    }
    a = a2;
    std::vector<double> h2 = h;
    for (graph::NodeId f = 0; f < g.num_nodes(); ++f) {
      if (g.OutDegree(f) == 0) continue;
      double sum = 0;
      for (graph::NodeId t : g.OutNeighbors(f)) sum += a[t];
      h2[f] = sum;
    }
    h = h2;
  }
  auto a_got = gpr::testing::VectorOf(result->tables[0]);
  auto h_got = gpr::testing::VectorOf(result->tables[1]);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(a_got.at(v), a[v], 1e-9) << "auth " << v;
    EXPECT_NEAR(h_got.at(v), h[v], 1e-9) << "hub " << v;
  }
}

TEST(MutualRecursion, LoweringAndValidation) {
  auto q = EvenOddQuery();
  auto program = LowerMutualToDatalog(q);
  ASSERT_TRUE(program.ok()) << program.status();
  // Odd refs Even (later: T); Even refs Odd (earlier: s(T)).
  EXPECT_TRUE(CheckXYStratified(*program).ok())
      << program->ToString();

  // One relation is not mutual recursion.
  MutualQuery single;
  single.relations.push_back(q.relations[0]);
  ra::Catalog empty_catalog;
  EXPECT_EQ(ExecuteMutual(single, empty_catalog, OracleLike())
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Initialization must not reference the system.
  MutualQuery bad = EvenOddQuery();
  bad.relations[0].init = {ProjectOp(
      Scan("EvenP"), {ops::As(Col("F"), "F"), ops::As(Col("T"), "T")})};
  auto catalog = MakeCatalog(TinyGraph());
  EXPECT_EQ(ExecuteMutual(bad, catalog, OracleLike()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MutualRecursion, CleansUpTemporaries) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  auto result = ExecuteMutual(EvenOddQuery(), catalog, OracleLike());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(catalog.TableNames(), before);
}

}  // namespace
}  // namespace gpr::core
