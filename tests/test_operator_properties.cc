// Randomized property sweeps over the physical operators: every physical
// choice (join algorithm, anti-join / union-by-update implementation,
// engine profile) must be observationally equivalent on random inputs.
#include <gtest/gtest.h>

#include "core/plan.h"
#include "ra/operators.h"
#include "test_util.h"
#include "util/rng.h"

namespace gpr {
namespace {

namespace ops = ra::ops;
using ra::Schema;
using ra::Table;
using ra::Value;
using ra::ValueType;

/// Random table with skewed keys (hash-bucket collisions matter) and a
/// sprinkling of NULLs in the payload column.
Table RandomTable(const std::string& name, int64_t key_space, size_t rows,
                  uint64_t seed) {
  Xoshiro256 rng(seed);
  Table t(name, Schema{{"k", ValueType::kInt64},
                       {"p", ValueType::kDouble}});
  for (size_t i = 0; i < rows; ++i) {
    // Square the uniform draw for skew.
    const double u = rng.NextDouble();
    const auto k = static_cast<int64_t>(u * u * static_cast<double>(key_space));
    if (rng.NextDouble() < 0.05) {
      t.AddRow({k, Value::Null()});
    } else {
      t.AddRow({k, rng.NextDouble() * 10});
    }
  }
  return t;
}

class JoinEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinEquivalence, AllAlgorithmsAgree) {
  const uint64_t seed = GetParam();
  Table l = RandomTable("L", 40, 300, seed);
  Table r = RandomTable("R", 40, 200, seed + 1000);
  ops::JoinKeys keys{{"k"}, {"k"}};
  auto hash = ops::Join(l, r, keys, ops::JoinAlgorithm::kHash);
  auto merge = ops::Join(l, r, keys, ops::JoinAlgorithm::kSortMerge);
  auto nl = ops::Join(l, r, keys, ops::JoinAlgorithm::kNestedLoop);
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(merge.ok());
  ASSERT_TRUE(nl.ok());
  EXPECT_TRUE(hash->SameRowsAs(*merge));
  EXPECT_TRUE(hash->SameRowsAs(*nl));
}

TEST_P(JoinEquivalence, IndexReuseDoesNotChangeResults) {
  const uint64_t seed = GetParam();
  Table l = RandomTable("L", 30, 250, seed);
  Table r = RandomTable("R", 30, 250, seed + 500);
  ops::JoinKeys keys{{"k"}, {"k"}};
  auto plain = ops::Join(l, r, keys, ops::JoinAlgorithm::kSortMerge);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(l.BuildSortIndex({"k"}).ok());
  ASSERT_TRUE(r.BuildSortIndex({"k"}).ok());
  auto indexed = ops::Join(l, r, keys, ops::JoinAlgorithm::kSortMerge);
  ASSERT_TRUE(indexed.ok());
  EXPECT_TRUE(plain->SameRowsAs(*indexed));

  ASSERT_TRUE(r.BuildHashIndex({"k"}).ok());
  auto hash_indexed = ops::Join(l, r, keys, ops::JoinAlgorithm::kHash);
  ASSERT_TRUE(hash_indexed.ok());
  EXPECT_TRUE(plain->SameRowsAs(*hash_indexed));
}

TEST_P(JoinEquivalence, OuterJoinsPartitionTheInnerJoin) {
  const uint64_t seed = GetParam();
  Table l = RandomTable("L", 25, 150, seed);
  Table r = RandomTable("R", 25, 120, seed + 77);
  ops::JoinKeys keys{{"k"}, {"k"}};
  auto inner = ops::Join(l, r, keys);
  auto left = ops::LeftOuterJoin(l, r, keys);
  auto full = ops::FullOuterJoin(l, r, keys);
  ASSERT_TRUE(inner.ok());
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(full.ok());
  size_t left_nullpad = 0;
  for (const auto& row : left->rows()) left_nullpad += row[2].is_null();
  size_t full_left_nullpad = 0;
  size_t full_right_nullpad = 0;
  for (const auto& row : full->rows()) {
    full_left_nullpad += row[2].is_null();   // unmatched left
    full_right_nullpad += row[0].is_null();  // unmatched right
  }
  // left outer = inner + null-padded unmatched left rows.
  EXPECT_EQ(left->NumRows(), inner->NumRows() + left_nullpad);
  // full outer adds the unmatched right rows on top.
  EXPECT_EQ(full->NumRows(),
            inner->NumRows() + full_left_nullpad + full_right_nullpad);
  EXPECT_EQ(left_nullpad, full_left_nullpad);
}

TEST_P(JoinEquivalence, SemiAntiPartitionTheLeftInput) {
  const uint64_t seed = GetParam();
  Table l = RandomTable("L", 20, 180, seed);
  Table r = RandomTable("R", 20, 90, seed + 13);
  ops::JoinKeys keys{{"k"}, {"k"}};
  auto semi = ops::SemiJoin(l, r, keys);
  auto anti = ops::AntiJoinBasic(l, r, keys);
  ASSERT_TRUE(semi.ok());
  ASSERT_TRUE(anti.ok());
  // Keys here are never NULL (payload carries the NULLs), so semi + anti
  // partition l exactly.
  EXPECT_EQ(semi->NumRows() + anti->NumRows(), l.NumRows());
  auto both = ops::UnionAll(*semi, *anti);
  ASSERT_TRUE(both.ok());
  EXPECT_TRUE(both->SameRowsAs(l));
}

TEST_P(JoinEquivalence, GroupByTotalsAreInvariantUnderSort) {
  const uint64_t seed = GetParam();
  Table t = RandomTable("T", 15, 200, seed);
  auto grouped = ops::GroupBy(t, {"k"}, {ra::SumOf(ra::Col("p"), "s"),
                                         ra::CountStar("c")});
  auto sorted = ops::Sort(t, {"p"});
  ASSERT_TRUE(sorted.ok());
  auto grouped2 = ops::GroupBy(*sorted, {"k"},
                               {ra::SumOf(ra::Col("p"), "s"),
                                ra::CountStar("c")});
  ASSERT_TRUE(grouped.ok());
  ASSERT_TRUE(grouped2.ok());
  // Sums of doubles depend on addition order; compare via sorted keys and
  // near-equality.
  auto a = grouped->SortedRows();
  auto b = grouped2->SortedRows();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i][0].Equals(b[i][0]));
    if (!a[i][1].is_null()) {
      EXPECT_NEAR(a[i][1].ToDouble(), b[i][1].ToDouble(), 1e-9);
    }
    EXPECT_EQ(a[i][2].AsInt64(), b[i][2].AsInt64());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace gpr
