// Tests for morsel-driven parallel execution (docs/performance.md): the
// thread pool's scheduling contract, DOP-invariance of the ra operators
// and of every evaluation algorithm, governor budgets under parallel
// execution, and the SQL `parallel N` hint.
//
// The determinism bar everywhere is *row-identical to DOP=1*, including
// row order — not just set equality.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "algos/registry.h"
#include "core/plan.h"
#include "core/union_by_update.h"
#include "core/with_plus.h"
#include "exec/exec_context.h"
#include "exec/thread_pool.h"
#include "ra/operators.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "test_util.h"
#include "util/rng.h"

namespace gpr {
namespace {

namespace ops = ra::ops;
using core::ExecuteWithPlus;
using core::JoinOp;
using core::OracleLike;
using core::ProjectOp;
using core::Scan;
using core::UnionMode;
using core::WithPlusQuery;
using exec::ProgressDetail;
using exec::ThreadPool;
using gpr::testing::MakeCatalog;
using gpr::testing::TinyDag;
using gpr::testing::TinyGraph;
using ra::Col;
using ra::Gt;
using ra::Lit;
using ra::Schema;
using ra::Table;
using ra::ValueType;

/// Asserts `a` and `b` hold identical rows in identical order.
void ExpectRowsIdentical(const Table& a, const Table& b,
                         const std::string& label) {
  ASSERT_EQ(a.NumRows(), b.NumRows()) << label;
  for (size_t i = 0; i < a.NumRows(); ++i) {
    EXPECT_TRUE(a.row(i) == b.row(i)) << label << ": row " << i << " differs";
  }
}

Table RandomMatrix(const std::string& name, int64_t n, size_t entries,
                   uint64_t seed) {
  Xoshiro256 rng(seed);
  Table t(name, Schema{{"F", ValueType::kInt64},
                       {"T", ValueType::kInt64},
                       {"ew", ValueType::kDouble}});
  t.Reserve(entries);
  for (size_t i = 0; i < entries; ++i) {
    t.AddRow({static_cast<int64_t>(rng.NextBounded(n)),
              static_cast<int64_t>(rng.NextBounded(n)),
              rng.NextDouble() * 3.0});
  }
  return t;
}

// ------------------------------------------------------------- thread pool

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  Status st = ThreadPool::Global().RunTasks(hits.size(), 8, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, ZeroAndOneTaskFastPaths) {
  EXPECT_TRUE(ThreadPool::Global()
                  .RunTasks(0, 8,
                            [](size_t) {
                              return Status::InvalidArgument("never runs");
                            })
                  .ok());
  std::atomic<int> ran{0};
  Status st = ThreadPool::Global().RunTasks(1, 8, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ran.fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, SerialErrorIsLowestFailedIndex) {
  Status st = ThreadPool::Global().RunTasks(10, 1, [](size_t i) {
    if (i >= 3) {
      return Status::InvalidArgument("task " + std::to_string(i));
    }
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("task 3"), std::string::npos) << st.ToString();
}

TEST(ThreadPoolTest, ParallelErrorComesFromTheFailedTask) {
  Status st = ThreadPool::Global().RunTasks(64, 8, [](size_t i) {
    if (i == 11) return Status::InvalidArgument("task 11 failed");
    return Status::OK();
  });
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("task 11"), std::string::npos);
}

TEST(ThreadPoolTest, NestedCallsRunInlineWithoutDeadlock) {
  std::atomic<int> inner_runs{0};
  Status st = ThreadPool::Global().RunTasks(4, 4, [&](size_t) {
    return ThreadPool::Global().RunTasks(8, 4, [&](size_t) {
      inner_runs.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
  });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(inner_runs.load(), 32);
}

TEST(ThreadPoolTest, InWorkerIsVisibleInsideTasksOnly) {
  ASSERT_FALSE(ThreadPool::InWorker());
  std::atomic<int> in_worker{0};
  Status st = ThreadPool::Global().RunTasks(16, 4, [&](size_t) {
    if (ThreadPool::InWorker()) in_worker.fetch_add(1);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(in_worker.load(), 16);
  EXPECT_FALSE(ThreadPool::InWorker());
}

TEST(ThreadPoolTest, NumMorselsCoversAllRows) {
  EXPECT_EQ(exec::NumMorsels(0, 8192), 1u);
  EXPECT_EQ(exec::NumMorsels(1, 8192), 1u);
  EXPECT_EQ(exec::NumMorsels(8192, 8192), 1u);
  EXPECT_EQ(exec::NumMorsels(8193, 8192), 2u);
  EXPECT_EQ(exec::NumMorsels(100, 7), 15u);
}

// ------------------------------------------------------ parallel admission

TEST(ParallelAdmission, AdmittedDopDropsToSerialBelowThreshold) {
  EXPECT_EQ(exec::AdmittedDop(100, 8, 8192), 1);
  EXPECT_EQ(exec::AdmittedDop(8191, 8, 8192), 1);
  EXPECT_EQ(exec::AdmittedDop(8192, 8, 8192), 8);
  EXPECT_EQ(exec::AdmittedDop(100, 8, 0), 8);  // 0 admits everything
  EXPECT_EQ(exec::AdmittedDop(100, 1, 8192), 1);
}

TEST(ParallelAdmission, ResolveMinParallelRowsPrecedence) {
  // No env override in the test process: configured >= 0 wins, negative
  // falls back to the 8192 default.
  if (std::getenv("GPR_MIN_PARALLEL_ROWS") != nullptr) {
    GTEST_SKIP() << "GPR_MIN_PARALLEL_ROWS set in the environment";
  }
  EXPECT_EQ(exec::ResolveMinParallelRows(4096), 4096u);
  EXPECT_EQ(exec::ResolveMinParallelRows(0), 0u);
  EXPECT_EQ(exec::ResolveMinParallelRows(-1), 8192u);
}

TEST(ParallelAdmission, SmallInputsDoNotDispatchToThePool) {
  // 5000 rows at DOP 8 stays under the default 8192-row threshold: the
  // result is still row-identical and no batch reaches the worker pool.
  Table t = RandomMatrix("T", 97, 5000, 7);
  auto serial = ops::Select(t, Gt(Col("ew"), Lit(1.0)));
  ASSERT_TRUE(serial.ok()) << serial.status();
  ra::EvalContext ctx;
  ctx.dop = 8;  // min_parallel_rows keeps its 8192 default
  const uint64_t before = ThreadPool::Global().dispatched_batches();
  auto out = ops::Select(t, Gt(Col("ew"), Lit(1.0)), &ctx);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(ThreadPool::Global().dispatched_batches(), before)
      << "a sub-threshold input dispatched to the pool";
  ExpectRowsIdentical(*serial, *out, "small-input select");
}

TEST(ParallelAdmission, ThresholdZeroDispatchesSmallInputs) {
  if (ThreadPool::Global().num_workers() == 0) {
    GTEST_SKIP() << "no pool workers on this machine";
  }
  Table t = RandomMatrix("T", 97, 5000, 7);
  ra::EvalContext ctx;
  ctx.dop = 8;
  ctx.min_parallel_rows = 0;
  const uint64_t before = ThreadPool::Global().dispatched_batches();
  auto out = ops::Select(t, Gt(Col("ew"), Lit(1.0)), &ctx);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_GT(ThreadPool::Global().dispatched_batches(), before);
}

// ------------------------------------------------- operator DOP-invariance

TEST(ParallelOperators, SelectProjectJoinGroupByMatchSerial) {
  Table t = RandomMatrix("T", 97, 5000, 7);
  Table r = RandomMatrix("R", 97, 3000, 8);

  auto sel1 = ops::Select(t, Gt(Col("ew"), Lit(1.0)));
  auto prj1 = ops::Project(
      t, {ops::As(ra::Add(Col("F"), Col("T")), "k"),
          ops::As(ra::Mul(Col("ew"), Lit(2.0)), "w")});
  auto join1 = ops::Join(t, r, {{"T"}, {"F"}});
  auto grp1 = ops::GroupBy(t, {"T"}, {ra::SumOf(Col("ew"), "s")});
  ASSERT_TRUE(sel1.ok() && prj1.ok() && join1.ok() && grp1.ok());

  for (int dop : {2, 8}) {
    ra::EvalContext ctx;
    ctx.dop = dop;
    ctx.min_parallel_rows = 1;  // admit these tiny fixtures
    const std::string d = " (dop " + std::to_string(dop) + ")";
    auto sel = ops::Select(t, Gt(Col("ew"), Lit(1.0)), &ctx);
    ASSERT_TRUE(sel.ok()) << sel.status();
    ExpectRowsIdentical(*sel1, *sel, "select" + d);
    auto prj = ops::Project(
        t, {ops::As(ra::Add(Col("F"), Col("T")), "k"),
            ops::As(ra::Mul(Col("ew"), Lit(2.0)), "w")}, &ctx);
    ASSERT_TRUE(prj.ok()) << prj.status();
    ExpectRowsIdentical(*prj1, *prj, "project" + d);
    auto join = ops::Join(t, r, {{"T"}, {"F"}}, ops::JoinAlgorithm::kHash,
                          nullptr, &ctx);
    ASSERT_TRUE(join.ok()) << join.status();
    ExpectRowsIdentical(*join1, *join, "hash join" + d);
    auto grp = ops::GroupBy(t, {"T"}, {ra::SumOf(Col("ew"), "s")}, &ctx);
    ASSERT_TRUE(grp.ok()) << grp.status();
    ExpectRowsIdentical(*grp1, *grp, "group by" + d);
  }
}

TEST(ParallelOperators, UnionByUpdateMatchesSerial) {
  Table r = RandomMatrix("R", 60, 2000, 9);
  Table s = RandomMatrix("S", 60, 2000, 10);
  auto base = core::UnionByUpdate(r, s, {"F", "T"},
                                  core::UnionByUpdateImpl::kUpdateFrom,
                                  core::PostgresLike());
  ASSERT_TRUE(base.ok()) << base.status();
  for (int dop : {2, 8}) {
    core::EngineProfile profile = core::PostgresLike();
    profile.degree_of_parallelism = dop;
    profile.parallel_min_rows = 1;  // admit these tiny fixtures
    auto out = core::UnionByUpdate(
        r, s, {"F", "T"}, core::UnionByUpdateImpl::kUpdateFrom, profile);
    ASSERT_TRUE(out.ok()) << out.status();
    ExpectRowsIdentical(*base, *out,
                        "union by update (dop " + std::to_string(dop) + ")");
  }
}

TEST(ParallelOperators, MergeStyleDuplicateSourceErrorIsDeterministic) {
  // MERGE-style ⊎ rejects duplicate source keys; under parallel execution
  // the reported duplicate must be the serial one (lowest row index).
  Table r("R", Schema{{"ID", ValueType::kInt64}, {"v", ValueType::kDouble}});
  r.AddRow({int64_t{1}, 1.0});
  Table s("S", Schema{{"ID", ValueType::kInt64}, {"v", ValueType::kDouble}});
  for (int64_t i = 0; i < 100; ++i) s.AddRow({i, 1.0});
  s.AddRow({int64_t{42}, 2.0});  // first duplicate (row 100 dups row 42)
  s.AddRow({int64_t{7}, 2.0});   // second duplicate
  auto serial = core::UnionByUpdate(r, s, {"ID"},
                                    core::UnionByUpdateImpl::kMerge,
                                    core::OracleLike());
  ASSERT_FALSE(serial.ok());
  for (int dop : {2, 8}) {
    core::EngineProfile profile = core::OracleLike();
    profile.degree_of_parallelism = dop;
    profile.parallel_min_rows = 1;
    auto out = core::UnionByUpdate(r, s, {"ID"},
                                   core::UnionByUpdateImpl::kMerge, profile);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().ToString(), serial.status().ToString());
  }
}

// ----------------------------------------------- algorithm DOP-invariance

// Every evaluation algorithm (SSSP, WCC, PR, HITS, TS, KC, MIS, LP, MNM,
// KS) must produce row-identical output at any DOP. MIS's rand()-driven
// steps detect the nondeterministic expression and stay serial, so even
// its coin flips reproduce the seeded sequence.
TEST(ParallelAlgorithms, EvaluationSetIsDopInvariant) {
  for (const auto& entry : algos::EvaluationSet(/*include_toposort=*/true)) {
    graph::Graph g = entry.needs_dag ? TinyDag() : TinyGraph();
    std::vector<int64_t> labels;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      labels.push_back(1 + (v % 3));  // LP / KS need VL(ID, label)
    }
    g.set_node_labels(std::move(labels));
    algos::AlgoOptions base;
    base.fault_spec = "none";
    auto catalog = MakeCatalog(g);
    auto baseline = entry.run(catalog, base);
    ASSERT_TRUE(baseline.ok()) << entry.abbrev << ": " << baseline.status();
    for (int dop : {2, 8}) {
      auto fresh = MakeCatalog(g);
      algos::AlgoOptions opt = base;
      opt.degree_of_parallelism = dop;
      opt.profile.parallel_min_rows = 1;  // admit the tiny graphs
      auto result = entry.run(fresh, opt);
      ASSERT_TRUE(result.ok()) << entry.abbrev << ": " << result.status();
      ExpectRowsIdentical(baseline->table, result->table,
                          entry.abbrev + " (dop " + std::to_string(dop) +
                              ")");
    }
  }
}

// --------------------------------------------- governor under parallelism

/// OracleLike with the parallel-admission threshold disabled, so the tiny
/// governor fixtures still exercise the parallel regions.
core::EngineProfile AdmitAllProfile() {
  core::EngineProfile p = OracleLike();
  p.parallel_min_rows = 0;
  return p;
}

/// TC over E, as in test_governor.cc, with an explicit DOP.
WithPlusQuery ParallelTcQuery(UnionMode mode, int dop) {
  WithPlusQuery q;
  q.rec_name = "TCp";
  q.rec_schema = Schema{{"F", ValueType::kInt64}, {"T", ValueType::kInt64}};
  q.init.push_back(
      {ProjectOp(Scan("E"), {ops::As(Col("F"), "F"), ops::As(Col("T"), "T")}),
       {}});
  q.recursive.push_back(
      {ProjectOp(JoinOp(Scan("TCp"), Scan("E"), {{"T"}, {"F"}}),
                 {ops::As(Col("TCp.F"), "F"), ops::As(Col("E.T"), "T")}),
       {}});
  q.mode = mode;
  q.fault_spec = "none";
  q.degree_of_parallelism = dop;
  return q;
}

TEST(ParallelGovernor, RowBudgetTripsWithProgressDetail) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  auto q = ParallelTcQuery(UnionMode::kUnionDistinct, 8);
  q.governor.row_budget = 5;  // the init projection alone produces 6 rows
  auto result = ExecuteWithPlus(q, catalog, AdmitAllProfile());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  const ProgressDetail* detail = ProgressDetail::FromStatus(result.status());
  ASSERT_NE(detail, nullptr) << result.status();
  EXPECT_EQ(detail->progress().tripped, "rows");
  EXPECT_GT(detail->progress().rows_produced, 5u);
  EXPECT_EQ(catalog.TableNames(), before);
}

TEST(ParallelGovernor, DeadlineTripsWithProgressDetail) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  // Unbounded union-all TC on a cyclic graph never converges; only the
  // deadline stops it — and it must trip from a parallel region too.
  auto q = ParallelTcQuery(UnionMode::kUnionAll, 8);
  q.governor.deadline_ms = 0.05;
  auto result = ExecuteWithPlus(q, catalog, AdmitAllProfile());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  const ProgressDetail* detail = ProgressDetail::FromStatus(result.status());
  ASSERT_NE(detail, nullptr) << result.status();
  EXPECT_EQ(detail->progress().tripped, "deadline");
  EXPECT_EQ(catalog.TableNames(), before);
}

TEST(ParallelGovernor, GovernedParallelResultMatchesSerial) {
  auto catalog = MakeCatalog(TinyGraph());
  auto plain = ExecuteWithPlus(
      ParallelTcQuery(UnionMode::kUnionDistinct, 1), catalog, OracleLike());
  ASSERT_TRUE(plain.ok()) << plain.status();
  auto q = ParallelTcQuery(UnionMode::kUnionDistinct, 8);
  q.governor.deadline_ms = 60000;
  q.governor.row_budget = 1000000;
  q.governor.byte_budget = 1ull << 30;
  q.governor.iteration_cap = 1000;
  auto governed = ExecuteWithPlus(q, catalog, AdmitAllProfile());
  ASSERT_TRUE(governed.ok()) << governed.status();
  EXPECT_TRUE(governed->converged);
  ExpectRowsIdentical(plain->table, governed->table, "governed TC (dop 8)");
}

TEST(ParallelGovernor, DopOutOfRangeIsRejected) {
  auto catalog = MakeCatalog(TinyGraph());
  auto q = ParallelTcQuery(UnionMode::kUnionDistinct, 2000);
  auto result = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ SQL surface

TEST(ParallelSql, ParallelHintParsesAndBinds) {
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) parallel 4 maxrecursion 3)");
  ASSERT_TRUE(ast.ok()) << ast.status();
  EXPECT_EQ(ast->parallel_dop, 4);
  auto catalog = MakeCatalog(TinyGraph());
  auto bound = sql::BindWithStatement(*ast, catalog);
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_EQ(bound->query.degree_of_parallelism, 4);
}

TEST(ParallelSql, DuplicateParallelHintIsAParseError) {
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) parallel 2 parallel 3)");
  ASSERT_FALSE(ast.ok());
  EXPECT_EQ(ast.status().code(), StatusCode::kParseError);
}

TEST(ParallelSql, OutOfRangeDopIsABindError) {
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) parallel 4096)");
  ASSERT_TRUE(ast.ok()) << ast.status();
  auto catalog = MakeCatalog(TinyGraph());
  auto bound = sql::BindWithStatement(*ast, catalog);
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kBindError);
}

TEST(ParallelSql, ParallelHintDoesNotChangeTheResult) {
  auto catalog = MakeCatalog(TinyGraph());
  auto serial = sql::RunSql(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F))",
      catalog, OracleLike());
  ASSERT_TRUE(serial.ok()) << serial.status();
  auto parallel = sql::RunSql(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) parallel 8)",
      catalog, OracleLike());
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ExpectRowsIdentical(*serial, *parallel, "sql parallel 8");
}

}  // namespace
}  // namespace gpr
