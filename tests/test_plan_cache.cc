// Tests for the cross-iteration plan-state cache (docs/performance.md):
// table content versioning (the invalidation substrate), the PlanCache
// container itself, governor byte accounting of cached artifacts, the
// loop-invariant hoisting prologue, result identity cache on/off at every
// DOP, and the SQL `cache on|off` option.
//
// The correctness bar mirrors test_parallel.cc: results with the cache on
// must be *row-identical* to the cache-off run — order included — at
// every degree of parallelism.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "algos/registry.h"
#include "core/checkpoint.h"
#include "core/plan.h"
#include "core/with_plus.h"
#include "exec/exec_context.h"
#include "ra/catalog.h"
#include "ra/operators.h"
#include "ra/plan_cache.h"
#include "ra/table.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "test_util.h"

namespace gpr {
namespace {

namespace ops = ra::ops;
using core::ExecuteWithPlus;
using core::JoinOp;
using core::OracleLike;
using core::ProjectOp;
using core::Scan;
using core::UnionMode;
using core::WithPlusQuery;
using exec::ExecContext;
using exec::ExecLimits;
using exec::ProgressDetail;
using gpr::testing::MakeCatalog;
using gpr::testing::TinyDag;
using gpr::testing::TinyGraph;
using ra::Col;
using ra::PlanCache;
using ra::Schema;
using ra::Table;
using ra::ValueType;

Table SmallTable(const std::string& name = "t") {
  Table t(name, Schema{{"F", ValueType::kInt64}, {"T", ValueType::kInt64}});
  t.AddRow({int64_t{1}, int64_t{2}});
  t.AddRow({int64_t{2}, int64_t{3}});
  return t;
}

/// Asserts `a` and `b` hold identical rows in identical order.
void ExpectRowsIdentical(const Table& a, const Table& b,
                         const std::string& label) {
  ASSERT_EQ(a.NumRows(), b.NumRows()) << label;
  for (size_t i = 0; i < a.NumRows(); ++i) {
    EXPECT_TRUE(a.row(i) == b.row(i)) << label << ": row " << i << " differs";
  }
}

// -------------------------------------------------------- table versioning

// Runs `mutate` against the table and asserts it drew exactly one fresh
// version from the process-wide counter: the bracket draws pin down the
// counter interval, so a second internal bump would be visible.
template <typename Fn>
void ExpectBumpsExactlyOnce(Table& t, const char* label, Fn mutate) {
  const uint64_t before = ra::NextTableVersion();
  mutate(t);
  const uint64_t after = ra::NextTableVersion();
  EXPECT_EQ(t.version(), before + 1) << label;
  EXPECT_EQ(after, before + 2) << label << ": expected exactly one draw";
}

TEST(TableVersioning, FreshTablesGetDistinctVersions) {
  Table a = SmallTable("a");
  Table b = SmallTable("b");
  EXPECT_NE(a.version(), b.version());
}

TEST(TableVersioning, EveryMutatingEntryPointBumpsExactlyOnce) {
  Table big = SmallTable("big");

  Table t = SmallTable();
  ExpectBumpsExactlyOnce(t, "AddRow", [](Table& x) {
    x.AddRow({int64_t{9}, int64_t{9}});
  });
  ExpectBumpsExactlyOnce(t, "AppendFrom", [&big](Table& x) {
    x.AppendFrom(big);  // one bump per call, not one per appended row
  });
  ExpectBumpsExactlyOnce(t, "BuildHashIndex", [](Table& x) {
    ASSERT_TRUE(x.BuildHashIndex({"F"}).ok());
  });
  ExpectBumpsExactlyOnce(t, "BuildSortIndex", [](Table& x) {
    ASSERT_TRUE(x.BuildSortIndex({"T"}).ok());
  });
  ExpectBumpsExactlyOnce(t, "DropIndexes",
                         [](Table& x) { x.DropIndexes(); });
  ExpectBumpsExactlyOnce(t, "SortRows", [](Table& x) { x.SortRows(); });
  ExpectBumpsExactlyOnce(t, "mutable_rows",
                         [](Table& x) { (void)x.mutable_rows(); });
  ExpectBumpsExactlyOnce(t, "set_schema", [](Table& x) {
    x.set_schema(Schema{{"A", ValueType::kInt64}, {"B", ValueType::kInt64}});
  });
  ExpectBumpsExactlyOnce(t, "Clear", [](Table& x) { x.Clear(); });
}

TEST(TableVersioning, MoveKeepsVersionCopyGetsFresh) {
  Table t = SmallTable();
  const uint64_t v = t.version();

  Table moved = std::move(t);
  EXPECT_EQ(moved.version(), v) << "a move keeps the physical contents";

  Table copied = moved;  // copy-construct: a new physical incarnation
  EXPECT_NE(copied.version(), v);

  Table assigned("x", moved.schema());
  assigned = moved;  // copy-assign likewise
  EXPECT_NE(assigned.version(), v);
  EXPECT_NE(assigned.version(), copied.version());
}

TEST(TableVersioning, CatalogReplaceTableAssignsFreshVersion) {
  ra::Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(SmallTable("E")).ok());
  auto before = catalog.Get("E");
  ASSERT_TRUE(before.ok());
  const uint64_t v = (*before)->version();

  ASSERT_TRUE(catalog.ReplaceTable("E", SmallTable("E")).ok());
  auto after = catalog.Get("E");
  ASSERT_TRUE(after.ok());
  EXPECT_NE((*after)->version(), v);
}

// ------------------------------------------------------------- plan cache

TEST(PlanCacheTest, MissInsertHit) {
  PlanCache cache;
  EXPECT_EQ(cache.Lookup<int>("k", 7), nullptr);

  auto artifact = std::make_shared<const int>(42);
  ASSERT_TRUE(cache.Insert<int>("k", 7, artifact, 100).ok());
  auto hit = cache.Lookup<int>("k", 7);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 42);

  const ra::PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.bytes_live, 100u);
}

TEST(PlanCacheTest, VersionMismatchInvalidatesTheEntry) {
  PlanCache cache;
  ASSERT_TRUE(
      cache.Insert<int>("k", 7, std::make_shared<const int>(1), 64).ok());

  // A lookup against a newer version must never serve the stale artifact;
  // the entry dies and its bytes leave the live count.
  EXPECT_EQ(cache.Lookup<int>("k", 8), nullptr);
  EXPECT_EQ(cache.NumEntries(), 0u);
  const ra::PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.invalidations, 1u);
  EXPECT_EQ(s.bytes_live, 0u);
}

TEST(PlanCacheTest, PoisonedEntryIsNeverServedAfterDropAndRecreate) {
  // The poisoned-cache scenario: an artifact cached against table E, then
  // E is dropped and re-created under the same name. Globally-unique
  // versions guarantee the new incarnation can never alias the old one.
  ra::Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable(SmallTable("E")).ok());
  auto e = catalog.Get("E");
  ASSERT_TRUE(e.ok());
  const uint64_t old_version = (*e)->version();

  PlanCache cache;
  ASSERT_TRUE(cache
                  .Insert<Table>("build:E", old_version,
                                 std::make_shared<const Table>(**e), 256)
                  .ok());

  ASSERT_TRUE(catalog.DropTable("E").ok());
  Table replacement("E", (*e)->schema());
  replacement.AddRow({int64_t{7}, int64_t{8}});
  ASSERT_TRUE(catalog.CreateTable(std::move(replacement)).ok());

  auto fresh = catalog.Get("E");
  ASSERT_TRUE(fresh.ok());
  ASSERT_NE((*fresh)->version(), old_version);
  EXPECT_EQ(cache.Lookup<Table>("build:E", (*fresh)->version()), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(PlanCacheTest, InsertChargesTheGovernorByteBudget) {
  ExecContext gov{ExecLimits{.byte_budget = 1000}};
  PlanCache cache(&gov);

  ASSERT_TRUE(
      cache.Insert<int>("a", 1, std::make_shared<const int>(1), 900).ok());

  // The second insert would exceed the budget: the governor's
  // ResourceExhausted (with ProgressDetail) comes back and the entry is
  // NOT stored.
  Status st =
      cache.InsertErased("b", 2, std::make_shared<const int>(2), 200);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  const ProgressDetail* detail = ProgressDetail::FromStatus(st);
  ASSERT_NE(detail, nullptr) << st.ToString();
  EXPECT_EQ(detail->progress().tripped, "bytes");
  EXPECT_EQ(cache.NumEntries(), 1u);
  EXPECT_EQ(cache.stats().bytes_live, 900u);
}

// -------------------------------------------------- fixpoint-driver wiring

/// TC over E (as in test_parallel.cc) with explicit cache/DOP knobs.
WithPlusQuery TcQuery(int plan_cache, int dop) {
  WithPlusQuery q;
  q.rec_name = "TCc";
  q.rec_schema = Schema{{"F", ValueType::kInt64}, {"T", ValueType::kInt64}};
  q.init.push_back(
      {ProjectOp(Scan("E"), {ops::As(Col("F"), "F"), ops::As(Col("T"), "T")}),
       {}});
  q.recursive.push_back(
      {ProjectOp(JoinOp(Scan("TCc"), Scan("E"), {{"T"}, {"F"}}),
                 {ops::As(Col("TCc.F"), "F"), ops::As(Col("E.T"), "T")}),
       {}});
  q.mode = UnionMode::kUnionDistinct;
  q.fault_spec = "none";
  q.plan_cache = plan_cache;
  q.degree_of_parallelism = dop;
  return q;
}

TEST(PlanCacheFixpoint, BuildSideReuseProducesHitsAndIdenticalRows) {
  auto catalog_off = MakeCatalog(TinyGraph());
  auto q_off = TcQuery(/*plan_cache=*/0, /*dop=*/1);
  auto off = ExecuteWithPlus(q_off, catalog_off, OracleLike());
  ASSERT_TRUE(off.ok()) << off.status();
  EXPECT_EQ(off->counters.cache_hits, 0u);
  EXPECT_EQ(off->counters.cache_misses, 0u);

  auto catalog_on = MakeCatalog(TinyGraph());
  auto q_on = TcQuery(/*plan_cache=*/1, /*dop=*/1);
  auto on = ExecuteWithPlus(q_on, catalog_on, OracleLike());
  ASSERT_TRUE(on.ok()) << on.status();

  // E never changes, so its hash-join build is built once and hit on
  // every later iteration; the bytes it holds are reported.
  EXPECT_GE(on->counters.cache_hits, 1u);
  EXPECT_GE(on->counters.cache_misses, 1u);
  EXPECT_GT(on->counters.cache_bytes, 0u);
  EXPECT_EQ(on->iterations, off->iterations);
  ExpectRowsIdentical(off->table, on->table, "TC cache on vs off");
}

TEST(PlanCacheFixpoint, InvariantComputedByDefIsHoistedOnce) {
  // E2 depends only on the base edge relation, so with the cache on it is
  // materialized once before the loop instead of once per iteration.
  auto make_query = [](int plan_cache) {
    WithPlusQuery q;
    q.rec_name = "R2";
    q.rec_schema = Schema{{"F", ValueType::kInt64}, {"T", ValueType::kInt64}};
    q.init.push_back({ProjectOp(Scan("E"), {ops::As(Col("F"), "F"),
                                            ops::As(Col("T"), "T")}),
                      {}});
    core::Subquery rec;
    rec.computed_by.push_back(
        {"E2",
         ProjectOp(JoinOp(Scan("E"), core::RenameOp(Scan("E"), "Eb"),
                          {{"T"}, {"F"}}),
                   {ops::As(Col("E.F"), "F"), ops::As(Col("Eb.T"), "T")},
                   "E2")});
    rec.plan =
        ProjectOp(JoinOp(Scan("R2"), Scan("E2"), {{"T"}, {"F"}}),
                  {ops::As(Col("R2.F"), "F"), ops::As(Col("E2.T"), "T")});
    q.recursive.push_back(std::move(rec));
    q.mode = UnionMode::kUnionDistinct;
    q.fault_spec = "none";
    q.plan_cache = plan_cache;
    return q;
  };

  auto catalog_off = MakeCatalog(TinyGraph());
  auto q_off = make_query(0);
  auto off = ExecuteWithPlus(q_off, catalog_off, OracleLike());
  ASSERT_TRUE(off.ok()) << off.status();
  EXPECT_EQ(off->counters.hoisted_subplans, 0u);

  auto catalog_on = MakeCatalog(TinyGraph());
  auto q_on = make_query(1);
  auto on = ExecuteWithPlus(q_on, catalog_on, OracleLike());
  ASSERT_TRUE(on.ok()) << on.status();
  EXPECT_GE(on->counters.hoisted_subplans, 1u);

  ExpectRowsIdentical(off->table, on->table, "hoisted def on vs off");
}

TEST(PlanCacheFixpoint, ByteCappedCacheTripsWithProgressDetail) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  auto q = TcQuery(/*plan_cache=*/1, /*dop=*/1);
  q.governor.byte_budget = 64;  // far below one cached build table
  auto result = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  const ProgressDetail* detail = ProgressDetail::FromStatus(result.status());
  ASSERT_NE(detail, nullptr) << result.status();
  EXPECT_EQ(detail->progress().tripped, "bytes");
  EXPECT_EQ(catalog.TableNames(), before) << "temporaries must be dropped";
}

// Every evaluation algorithm, cache on/off × DOP 1/8: row-identical.
TEST(PlanCacheFixpoint, AlgorithmsAreCacheAndDopInvariant) {
  for (const auto& entry : algos::EvaluationSet(/*include_toposort=*/true)) {
    graph::Graph g = entry.needs_dag ? TinyDag() : TinyGraph();
    std::vector<int64_t> labels;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      labels.push_back(1 + (v % 3));  // LP / KS need VL(ID, label)
    }
    g.set_node_labels(std::move(labels));

    algos::AlgoOptions base;
    base.fault_spec = "none";
    base.plan_cache = 0;
    auto catalog = MakeCatalog(g);
    auto baseline = entry.run(catalog, base);
    ASSERT_TRUE(baseline.ok()) << entry.abbrev << ": " << baseline.status();

    for (int cache : {0, 1}) {
      for (int dop : {1, 8}) {
        if (cache == 0 && dop == 1) continue;  // the baseline itself
        auto fresh = MakeCatalog(g);
        algos::AlgoOptions opt = base;
        opt.plan_cache = cache;
        opt.degree_of_parallelism = dop;
        auto result = entry.run(fresh, opt);
        ASSERT_TRUE(result.ok()) << entry.abbrev << ": " << result.status();
        ExpectRowsIdentical(baseline->table, result->table,
                            entry.abbrev + " (cache " +
                                std::to_string(cache) + ", dop " +
                                std::to_string(dop) + ")");
      }
    }
  }
}

// ------------------------------------------------- cache hygiene / faults

// An injected operator fault mid-fixpoint with the cache on must leak
// nothing: the query-scoped cache dies with the query and TempTableScope
// drops every temporary.
TEST(PlanCacheFaults, InjectedFaultLeavesCatalogClean) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  auto q = TcQuery(/*plan_cache=*/1, /*dop=*/1);
  q.fault_spec = "join:2";
  auto result = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kExecutionError);
  EXPECT_EQ(catalog.TableNames(), before);
}

// The poisoned-artifact scenario for checkpoint/resume: a run caches
// build-side artifacts against the recursive relation, is interrupted,
// and a later run resumes from the snapshot with the cache still on. The
// restored table's fresh content version (CheckpointStore::Find returns
// copies) guarantees no artifact from the interrupted incarnation is
// served — the resumed result must match the cache-off baseline exactly.
TEST(PlanCacheFaults, InterruptedThenResumedRunMatchesCacheOffBaseline) {
  auto catalog_off = MakeCatalog(TinyGraph());
  auto q_off = TcQuery(/*plan_cache=*/0, /*dop=*/1);
  auto off = ExecuteWithPlus(q_off, catalog_off, OracleLike());
  ASSERT_TRUE(off.ok()) << off.status();

  auto catalog = MakeCatalog(TinyGraph());
  core::CheckpointStore store;
  auto q = TcQuery(/*plan_cache=*/1, /*dop=*/1);
  q.fault_spec = "iteration:3";
  q.checkpoint_every = 1;
  q.checkpoint_store = &store;
  auto interrupted = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_FALSE(interrupted.ok());
  const ProgressDetail* detail =
      ProgressDetail::FromStatus(interrupted.status());
  ASSERT_NE(detail, nullptr) << interrupted.status();
  const std::string token = detail->progress().resume_token;
  ASSERT_FALSE(token.empty());

  auto resume = TcQuery(/*plan_cache=*/1, /*dop=*/1);
  resume.checkpoint_every = 1;
  resume.checkpoint_store = &store;
  resume.resume_from = token;
  auto resumed = ExecuteWithPlus(resume, catalog, OracleLike());
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ExpectRowsIdentical(off->table, resumed->table,
                      "resumed cache-on vs cache-off");
  EXPECT_EQ(resumed->iterations, off->iterations);
}

// ------------------------------------------------------------ SQL surface

TEST(PlanCacheSql, CacheOptionParsesAndBinds) {
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) cache off maxrecursion 3)");
  ASSERT_TRUE(ast.ok()) << ast.status();
  EXPECT_EQ(ast->plan_cache, 0);
  auto catalog = MakeCatalog(TinyGraph());
  auto bound = sql::BindWithStatement(*ast, catalog);
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_EQ(bound->query.plan_cache, 0);

  auto on = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) cache on)");
  ASSERT_TRUE(on.ok()) << on.status();
  EXPECT_EQ(on->plan_cache, 1);
}

TEST(PlanCacheSql, OmittedCacheOptionInheritsTheProfile) {
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F))");
  ASSERT_TRUE(ast.ok()) << ast.status();
  EXPECT_EQ(ast->plan_cache, -1);
}

TEST(PlanCacheSql, DuplicateCacheOptionIsAParseError) {
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) cache on cache off)");
  ASSERT_FALSE(ast.ok());
  EXPECT_EQ(ast.status().code(), StatusCode::kParseError);
}

TEST(PlanCacheSql, CacheWithoutOnOffIsAParseError) {
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) cache maybe)");
  ASSERT_FALSE(ast.ok());
  EXPECT_EQ(ast.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace gpr
