// Tests for plan schema inference (used by the SQL binder) and plan
// rendering.
#include <gtest/gtest.h>

#include "core/plan.h"
#include "test_util.h"

namespace gpr::core {
namespace {

namespace ops = ra::ops;
using gpr::testing::MakeCatalog;
using gpr::testing::TinyGraph;
using ra::Col;
using ra::Lit;
using ra::Schema;
using ra::ValueType;

class InferSchemaTest : public ::testing::Test {
 protected:
  InferSchemaTest() : catalog_(MakeCatalog(TinyGraph())) {}

  /// Inference must agree with actual execution output.
  void ExpectMatchesExecution(const PlanPtr& plan) {
    auto inferred = InferSchema(plan, catalog_);
    ASSERT_TRUE(inferred.ok()) << inferred.status();
    auto executed = ExecutePlan(plan, catalog_, OracleLike());
    ASSERT_TRUE(executed.ok()) << executed.status();
    EXPECT_EQ(inferred->ToString(), executed->schema().ToString());
  }

  ra::Catalog catalog_;
};

TEST_F(InferSchemaTest, ScanSelectProject) {
  ExpectMatchesExecution(Scan("E"));
  ExpectMatchesExecution(SelectOp(Scan("E"), ra::Gt(Col("ew"), Lit(0.5))));
  ExpectMatchesExecution(ProjectOp(
      Scan("E"), {ops::As(Col("F"), "src"),
                  ops::As(ra::Mul(Col("ew"), Lit(2.0)), "w2"),
                  ops::As(ra::Eq(Col("F"), Col("T")), "loop")}));
}

TEST_F(InferSchemaTest, JoinsQualifyColumns) {
  ExpectMatchesExecution(JoinOp(Scan("E"), Scan("V"), {{"T"}, {"ID"}}));
  ExpectMatchesExecution(
      LeftOuterJoinOp(Scan("V"), Scan("E"), {{"ID"}, {"F"}}));
  ExpectMatchesExecution(CrossProductOp(Scan("V"), Scan("E")));
  ExpectMatchesExecution(
      JoinOp(RenameOp(Scan("E"), "E1"), RenameOp(Scan("E"), "E2"),
             {{"T"}, {"F"}}));
}

TEST_F(InferSchemaTest, GroupByAndSetOps) {
  ExpectMatchesExecution(GroupByOp(
      Scan("E"), {"F"},
      {ra::SumOf(Col("ew"), "s"), ra::CountStar("c"),
       ra::AggSpec{ra::AggKind::kAvg, Col("ew"), "a"}}));
  ExpectMatchesExecution(GroupByOp(Scan("E"), {},
                                   {ra::MaxOf(Col("T"), "mx")}));
  ExpectMatchesExecution(UnionAllOp(Scan("E"), Scan("E")));
  ExpectMatchesExecution(DistinctOp(ProjectOp(
      Scan("E"), {ops::As(Col("F"), "F")})));
  ExpectMatchesExecution(
      AntiJoinOp(Scan("V"), Scan("E"), {{"ID"}, {"T"}}));
  ExpectMatchesExecution(SortOp(Scan("E"), {"T"}));
}

TEST_F(InferSchemaTest, MMAndMVJoin) {
  ExpectMatchesExecution(
      MMJoinOp(RenameOp(Scan("E"), "A"), RenameOp(Scan("E"), "B"),
               MinPlus()));
  ExpectMatchesExecution(MVJoinOp(Scan("E"), Scan("V"), PlusTimes()));
}

TEST_F(InferSchemaTest, OverlaysSupplyMissingTables) {
  std::unordered_map<std::string, Schema> o;
  o.emplace("R", Schema{{"ID", ValueType::kInt64},
                        {"vw", ValueType::kDouble}});
  auto plan = JoinOp(Scan("E"), Scan("R"), {{"T"}, {"ID"}});
  auto without = InferSchema(plan, catalog_);
  EXPECT_FALSE(without.ok());
  auto with = InferSchema(plan, catalog_, &o);
  ASSERT_TRUE(with.ok()) << with.status();
  EXPECT_TRUE(with->Has("R.vw"));
}

TEST_F(InferSchemaTest, RenameWithColumnList) {
  auto plan = RenameOp(Scan("V"), "W", {"node", "weight"});
  auto s = InferSchema(plan, catalog_);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->column(0).name, "node");
  EXPECT_EQ(s->column(1).name, "weight");
  auto bad = RenameOp(Scan("V"), "W", {"only_one"});
  EXPECT_FALSE(InferSchema(bad, catalog_).ok());
}

TEST(PlanToString, RendersTree) {
  auto plan = ProjectOp(
      JoinOp(Scan("TC"), Scan("E"), {{"T"}, {"F"}}),
      {ops::As(Col("TC.F"), "F")});
  const std::string s = plan->ToString();
  EXPECT_NE(s.find("Project"), std::string::npos);
  EXPECT_NE(s.find("Join"), std::string::npos);
  EXPECT_NE(s.find("Scan TC"), std::string::npos);
  EXPECT_NE(s.find("Scan E"), std::string::npos);
}

}  // namespace
}  // namespace gpr::core
