// Unit tests for the relational engine: values, schemas, expressions,
// tables, catalog, and the basic operators.
#include <gtest/gtest.h>

#include "ra/catalog.h"
#include "ra/expr.h"
#include "ra/operators.h"
#include "ra/table.h"

namespace gpr::ra {
namespace {

namespace ops = ra::ops;

// ----------------------------------------------------------------- Value

TEST(Value, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{3}).is_int64());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value("abc").is_string());
  EXPECT_EQ(Value(int64_t{3}).ToDouble(), 3.0);
  EXPECT_EQ(Value(3.9).ToInt64(), 3);
}

TEST(Value, NumericCrossTypeEquality) {
  EXPECT_TRUE(Value(int64_t{3}).Equals(Value(3.0)));
  EXPECT_FALSE(Value(int64_t{3}).Equals(Value(3.5)));
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value(int64_t{0})));
  EXPECT_FALSE(Value("3").Equals(Value(int64_t{3})));
}

TEST(Value, HashConsistentWithEquals) {
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(7.0).Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(Value, TotalOrder) {
  EXPECT_LT(Value::Null().Compare(Value(int64_t{0})), 0);
  EXPECT_LT(Value(int64_t{1}).Compare(Value(2.5)), 0);
  EXPECT_LT(Value(2.5).Compare(Value("a")), 0);  // numbers < strings
  EXPECT_EQ(Value("a").Compare(Value("a")), 0);
  EXPECT_GT(Value("b").Compare(Value("a")), 0);
}

// ---------------------------------------------------------------- Schema

TEST(Schema, QualifiedLookup) {
  Schema s{{"E.F", ValueType::kInt64}, {"E.T", ValueType::kInt64}};
  EXPECT_EQ(*s.IndexOf("E.F"), 0u);
  EXPECT_EQ(*s.IndexOf("F"), 0u);  // suffix match
  EXPECT_EQ(*s.IndexOf("T"), 1u);
  EXPECT_FALSE(s.IndexOf("x").has_value());
}

TEST(Schema, AmbiguousSuffixFails) {
  Schema s{{"A.F", ValueType::kInt64}, {"B.F", ValueType::kInt64}};
  EXPECT_FALSE(s.IndexOf("F").has_value());
  EXPECT_TRUE(s.IndexOf("A.F").has_value());
  EXPECT_FALSE(s.Resolve("F").ok());
}

TEST(Schema, QualifiedStripsOldQualifier) {
  Schema s{{"E.F", ValueType::kInt64}};
  Schema q = s.Qualified("X");
  EXPECT_EQ(q.column(0).name, "X.F");
}

TEST(Schema, UnionCompatibility) {
  Schema a{{"x", ValueType::kInt64}, {"y", ValueType::kDouble}};
  Schema b{{"p", ValueType::kDouble}, {"q", ValueType::kInt64}};
  Schema c{{"p", ValueType::kString}, {"q", ValueType::kInt64}};
  EXPECT_TRUE(a.UnionCompatible(b));  // numerics interchange
  EXPECT_FALSE(a.UnionCompatible(c));
  EXPECT_FALSE(a.UnionCompatible(Schema{{"x", ValueType::kInt64}}));
}

// ------------------------------------------------------------ Expression

Schema TestSchema() {
  return Schema{{"a", ValueType::kInt64},
                {"b", ValueType::kDouble},
                {"s", ValueType::kString}};
}

TEST(Expr, ArithmeticAndTypes) {
  auto compiled = Compile(Add(Col("a"), Lit(int64_t{2})), TestSchema());
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->result_type(), ValueType::kInt64);
  EXPECT_EQ(compiled->Eval({int64_t{3}, 0.0, ""}).AsInt64(), 5);

  auto div = Compile(Div(Col("a"), Lit(int64_t{2})), TestSchema());
  ASSERT_TRUE(div.ok());
  EXPECT_EQ(div->result_type(), ValueType::kDouble);
  EXPECT_EQ(div->Eval({int64_t{3}, 0.0, ""}).AsDouble(), 1.5);
}

TEST(Expr, DivisionByZeroYieldsNull) {
  auto compiled = Compile(Div(Col("b"), Lit(0.0)), TestSchema());
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(compiled->Eval({int64_t{0}, 1.0, ""}).is_null());
}

TEST(Expr, ThreeValuedLogic) {
  // NULL and false = false; NULL or true = true; NULL and true = NULL.
  auto and_false =
      Compile(And(IsNull(Col("s")), Lit(int64_t{0})), TestSchema());
  auto null_and_false =
      Compile(And(Eq(Col("b"), Lit(1.0)), Lit(int64_t{0})), TestSchema());
  ASSERT_TRUE(and_false.ok());
  ASSERT_TRUE(null_and_false.ok());
  Tuple with_null{int64_t{1}, Value::Null(), "x"};
  EXPECT_EQ(null_and_false->Eval(with_null).AsInt64(), 0);  // null and false
  auto null_or_true =
      Compile(Or(Eq(Col("b"), Lit(1.0)), Lit(int64_t{1})), TestSchema());
  ASSERT_TRUE(null_or_true.ok());
  EXPECT_EQ(null_or_true->Eval(with_null).AsInt64(), 1);
  auto null_and_true =
      Compile(And(Eq(Col("b"), Lit(1.0)), Lit(int64_t{1})), TestSchema());
  ASSERT_TRUE(null_and_true.ok());
  EXPECT_TRUE(null_and_true->Eval(with_null).is_null());
  EXPECT_FALSE(null_and_true->EvalBool(with_null));  // unknown is not true
}

TEST(Expr, Coalesce) {
  auto compiled =
      Compile(Call("coalesce", {Col("b"), Lit(9.0)}), TestSchema());
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->Eval({int64_t{0}, Value::Null(), ""}).AsDouble(), 9.0);
  EXPECT_EQ(compiled->Eval({int64_t{0}, 2.0, ""}).AsDouble(), 2.0);
}

TEST(Expr, Functions) {
  auto sqrt_e = Compile(Call("sqrt", {Lit(9.0)}), TestSchema());
  ASSERT_TRUE(sqrt_e.ok());
  EXPECT_EQ(sqrt_e->Eval({int64_t{0}, 0.0, ""}).AsDouble(), 3.0);
  auto pow_e = Compile(Call("pow", {Lit(2.0), Lit(10.0)}), TestSchema());
  ASSERT_TRUE(pow_e.ok());
  EXPECT_EQ(pow_e->Eval({int64_t{0}, 0.0, ""}).AsDouble(), 1024.0);
  auto greatest = Compile(
      Call("greatest", {Lit(int64_t{1}), Lit(int64_t{5}), Lit(int64_t{3})}),
      TestSchema());
  ASSERT_TRUE(greatest.ok());
  EXPECT_EQ(greatest->Eval({int64_t{0}, 0.0, ""}).AsInt64(), 5);
}

TEST(Expr, RandRequiresContextAndIsDeterministicPerSeed) {
  auto compiled = Compile(Call("rand", {}), TestSchema());
  ASSERT_TRUE(compiled.ok());
  Xoshiro256 rng1(1);
  Xoshiro256 rng2(1);
  EvalContext c1{&rng1};
  EvalContext c2{&rng2};
  Tuple t{int64_t{0}, 0.0, ""};
  EXPECT_EQ(compiled->Eval(t, &c1).AsDouble(),
            compiled->Eval(t, &c2).AsDouble());
}

TEST(Expr, UnknownColumnAndFunctionFailBinding) {
  EXPECT_FALSE(Compile(Col("nope"), TestSchema()).ok());
  EXPECT_FALSE(Compile(Call("nosuchfn", {Col("a")}), TestSchema()).ok());
}

// ----------------------------------------------------------------- Table

Table MakeEdges() {
  Table t("E", Schema{{"F", ValueType::kInt64},
                      {"T", ValueType::kInt64},
                      {"ew", ValueType::kDouble}});
  t.AddRow({int64_t{0}, int64_t{1}, 1.0});
  t.AddRow({int64_t{1}, int64_t{2}, 2.0});
  t.AddRow({int64_t{0}, int64_t{2}, 4.0});
  t.AddRow({int64_t{2}, int64_t{0}, 1.5});
  return t;
}

TEST(Table, IndexesAndStats) {
  Table t = MakeEdges();
  EXPECT_FALSE(t.stats().present);
  t.Analyze();
  EXPECT_TRUE(t.stats().present);
  EXPECT_EQ(t.stats().num_rows, 4u);
  EXPECT_EQ(t.stats().distinct[0], 3u);  // F has values {0, 1, 2}

  ASSERT_TRUE(t.BuildHashIndex({"F"}).ok());
  const auto* rows = t.hash_index()->Lookup({Value(int64_t{0})});
  ASSERT_NE(rows, nullptr);
  EXPECT_EQ(rows->size(), 2u);
  EXPECT_EQ(t.hash_index()->Lookup({Value(int64_t{9})}), nullptr);

  ASSERT_TRUE(t.BuildSortIndex({"T"}).ok());
  EXPECT_EQ(t.sort_index()->order().size(), 4u);
  // Adding a row invalidates stats and the sort index but feeds the hash
  // index incrementally.
  t.AddRow({int64_t{3}, int64_t{0}, 1.0});
  EXPECT_FALSE(t.stats().present);
  EXPECT_EQ(t.sort_index(), nullptr);
  ASSERT_NE(t.hash_index(), nullptr);
  EXPECT_EQ(t.hash_index()->Lookup({Value(int64_t{3})})->size(), 1u);
}

TEST(Table, SameRowsAsIsOrderInsensitive) {
  Table a = MakeEdges();
  Table b("X", a.schema());
  auto rows = a.SortedRows();
  for (auto it = rows.rbegin(); it != rows.rend(); ++it) b.AddRow(*it);
  EXPECT_TRUE(a.SameRowsAs(b));
  b.AddRow({int64_t{9}, int64_t{9}, 0.0});
  EXPECT_FALSE(a.SameRowsAs(b));
}

// --------------------------------------------------------------- Catalog

TEST(Catalog, LifecycleAndTempTables) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable(MakeEdges()).ok());
  EXPECT_FALSE(c.CreateTable(MakeEdges()).ok());  // duplicate
  EXPECT_TRUE(c.Has("E"));
  EXPECT_FALSE(c.IsTemporary("E"));

  ASSERT_TRUE(c.CreateTempTable("tmp", MakeEdges().schema()).ok());
  EXPECT_TRUE(c.IsTemporary("tmp"));
  // Temp tables are silently replaced on re-create.
  ASSERT_TRUE(c.CreateTempTable("tmp", MakeEdges().schema()).ok());
  // But a temp table cannot shadow a base table.
  EXPECT_FALSE(c.CreateTempTable("E", MakeEdges().schema()).ok());

  ASSERT_TRUE(c.Truncate("tmp").ok());
  ASSERT_TRUE(c.ReplaceTable("tmp", MakeEdges()).ok());
  EXPECT_EQ((*c.Get("tmp"))->NumRows(), 4u);

  c.DropAllTemporary();
  EXPECT_FALSE(c.Has("tmp"));
  EXPECT_TRUE(c.Has("E"));
  ASSERT_TRUE(c.DropTable("E").ok());
  EXPECT_FALSE(c.DropTable("E").ok());
}

// ------------------------------------------------------------- Operators

TEST(Operators, SelectAndProject) {
  Table e = MakeEdges();
  auto sel = ops::Select(e, Gt(Col("ew"), Lit(1.0)));
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->NumRows(), 3u);

  auto proj = ops::Project(e, {ops::As(Mul(Col("ew"), Lit(10.0)), "w10")});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->schema().column(0).name, "w10");
  EXPECT_EQ(proj->row(0)[0].AsDouble(), 10.0);
}

TEST(Operators, SetOperations) {
  Table e = MakeEdges();
  auto dup = ops::UnionAll(e, e);
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->NumRows(), 8u);
  auto dedup = ops::Distinct(*dup);
  ASSERT_TRUE(dedup.ok());
  EXPECT_EQ(dedup->NumRows(), 4u);
  auto united = ops::UnionDistinct(e, e);
  ASSERT_TRUE(united.ok());
  EXPECT_EQ(united->NumRows(), 4u);

  Table half("H", e.schema());
  half.AddRow(e.row(0));
  half.AddRow(e.row(1));
  auto diff = ops::Difference(e, half);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->NumRows(), 2u);
  auto inter = ops::Intersect(e, half);
  ASSERT_TRUE(inter.ok());
  EXPECT_EQ(inter->NumRows(), 2u);
}

TEST(Operators, JoinAlgorithmsAgree) {
  Table e = MakeEdges();
  auto e2 = ops::Rename(e, "E2");
  ASSERT_TRUE(e2.ok());
  ops::JoinKeys keys{{"T"}, {"F"}};
  auto hash = ops::Join(e, *e2, keys, ops::JoinAlgorithm::kHash);
  auto merge = ops::Join(e, *e2, keys, ops::JoinAlgorithm::kSortMerge);
  auto nl = ops::Join(e, *e2, keys, ops::JoinAlgorithm::kNestedLoop);
  ASSERT_TRUE(hash.ok());
  ASSERT_TRUE(merge.ok());
  ASSERT_TRUE(nl.ok());
  EXPECT_GT(hash->NumRows(), 0u);
  EXPECT_TRUE(hash->SameRowsAs(*merge));
  EXPECT_TRUE(hash->SameRowsAs(*nl));
  // Qualified output columns.
  EXPECT_TRUE(hash->schema().Has("E.F"));
  EXPECT_TRUE(hash->schema().Has("E2.T"));
}

TEST(Operators, JoinWithResidualPredicate) {
  Table e = MakeEdges();
  auto e2 = ops::Rename(e, "E2");
  ASSERT_TRUE(e2.ok());
  ops::JoinKeys keys{{"T"}, {"F"}};
  auto joined = ops::Join(e, *e2, keys, ops::JoinAlgorithm::kHash,
                          Gt(Col("E2.ew"), Col("E.ew")));
  ASSERT_TRUE(joined.ok());
  for (const auto& row : joined->rows()) {
    const auto ew_l = row[2].AsDouble();
    const auto ew_r = row[5].AsDouble();
    EXPECT_GT(ew_r, ew_l);
  }
}

TEST(Operators, SelfJoinWithoutRenameFails) {
  Table e = MakeEdges();
  auto joined = ops::Join(e, e, {{"T"}, {"F"}});
  EXPECT_FALSE(joined.ok());
  EXPECT_EQ(joined.status().code(), StatusCode::kBindError);
}

TEST(Operators, NullKeysNeverMatch) {
  Table l("L", Schema{{"k", ValueType::kInt64}});
  l.AddRow({Value::Null()});
  l.AddRow({int64_t{1}});
  Table r("R", Schema{{"k", ValueType::kInt64}});
  r.AddRow({Value::Null()});
  r.AddRow({int64_t{1}});
  auto joined = ops::Join(l, r, {{"k"}, {"k"}});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->NumRows(), 1u);  // only the 1-1 pair
}

TEST(Operators, OuterJoins) {
  Table l("L", Schema{{"k", ValueType::kInt64}, {"x", ValueType::kInt64}});
  l.AddRow({int64_t{1}, int64_t{10}});
  l.AddRow({int64_t{2}, int64_t{20}});
  Table r("R", Schema{{"k", ValueType::kInt64}, {"y", ValueType::kInt64}});
  r.AddRow({int64_t{2}, int64_t{200}});
  r.AddRow({int64_t{3}, int64_t{300}});

  auto left = ops::LeftOuterJoin(l, r, {{"k"}, {"k"}});
  ASSERT_TRUE(left.ok());
  EXPECT_EQ(left->NumRows(), 2u);
  size_t nulls = 0;
  for (const auto& row : left->rows()) nulls += row[2].is_null();
  EXPECT_EQ(nulls, 1u);  // key 1 unmatched

  auto full = ops::FullOuterJoin(l, r, {{"k"}, {"k"}});
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->NumRows(), 3u);  // 1 unmatched, 2 matched, 3 unmatched
}

TEST(Operators, SemiAndAntiJoin) {
  Table e = MakeEdges();
  Table roots("Roots", Schema{{"ID", ValueType::kInt64}});
  roots.AddRow({int64_t{0}});
  auto semi = ops::SemiJoin(e, roots, {{"F"}, {"ID"}});
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(semi->NumRows(), 2u);
  auto anti = ops::AntiJoinBasic(e, roots, {{"F"}, {"ID"}});
  ASSERT_TRUE(anti.ok());
  EXPECT_EQ(anti->NumRows(), 2u);
}

TEST(Operators, GroupByBasics) {
  Table e = MakeEdges();
  auto grouped = ops::GroupBy(
      e, {"F"},
      {SumOf(Col("ew"), "total"), CountStar("cnt"), MaxOf(Col("T"), "mx")});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->NumRows(), 3u);
  for (const auto& row : grouped->rows()) {
    if (row[0].AsInt64() == 0) {
      EXPECT_EQ(row[1].AsDouble(), 5.0);
      EXPECT_EQ(row[2].AsInt64(), 2);
      EXPECT_EQ(row[3].AsInt64(), 2);
    }
  }
}

TEST(Operators, ScalarAggregateOverEmptyInput) {
  Table empty("X", Schema{{"v", ValueType::kDouble}});
  auto grouped = ops::GroupBy(
      empty, {}, {SumOf(Col("v"), "s"), CountStar("c")});
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ(grouped->NumRows(), 1u);
  EXPECT_TRUE(grouped->row(0)[0].is_null());  // sum of nothing is NULL
  EXPECT_EQ(grouped->row(0)[1].AsInt64(), 0);  // count of nothing is 0
}

TEST(Operators, AggregationIgnoresNulls) {
  Table t("X", Schema{{"v", ValueType::kDouble}});
  t.AddRow({1.0});
  t.AddRow({Value::Null()});
  t.AddRow({3.0});
  auto grouped = ops::GroupBy(
      t, {},
      {SumOf(Col("v"), "s"), CountOf(Col("v"), "c"),
       {AggKind::kAvg, Col("v"), "a"}, MinOf(Col("v"), "mn")});
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->row(0)[0].AsDouble(), 4.0);
  EXPECT_EQ(grouped->row(0)[1].AsInt64(), 2);
  EXPECT_EQ(grouped->row(0)[2].AsDouble(), 2.0);
  EXPECT_EQ(grouped->row(0)[3].AsDouble(), 1.0);
}

TEST(Operators, SortIsStableLexicographic) {
  Table e = MakeEdges();
  auto sorted = ops::Sort(e, {"T", "F"});
  ASSERT_TRUE(sorted.ok());
  for (size_t i = 1; i < sorted->NumRows(); ++i) {
    const auto& prev = sorted->row(i - 1);
    const auto& cur = sorted->row(i);
    const bool ordered =
        prev[1].AsInt64() < cur[1].AsInt64() ||
        (prev[1].AsInt64() == cur[1].AsInt64() &&
         prev[0].AsInt64() <= cur[0].AsInt64());
    EXPECT_TRUE(ordered);
  }
}

TEST(Operators, CrossProduct) {
  Table a("A", Schema{{"x", ValueType::kInt64}});
  a.AddRow({int64_t{1}});
  a.AddRow({int64_t{2}});
  Table b("B", Schema{{"y", ValueType::kInt64}});
  b.AddRow({int64_t{10}});
  auto cross = ops::CrossProduct(a, b);
  ASSERT_TRUE(cross.ok());
  EXPECT_EQ(cross->NumRows(), 2u);
  EXPECT_TRUE(cross->schema().Has("A.x"));
  EXPECT_TRUE(cross->schema().Has("B.y"));
}

}  // namespace
}  // namespace gpr::ra
