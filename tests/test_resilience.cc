// Tests for the resilience layer (docs/robustness.md): iteration-granular
// checkpoint/resume for both fixpoint engines, retry-with-backoff, fault
// classes (transient vs permanent), and the SQL / explain surface of
// `checkpoint every N`.
//
// The centerpiece is a chaos harness: every evaluation algorithm (SSSP,
// WCC, PR, HITS, TS, KC, MIS, LP, MNM, KS) is interrupted mid-fixpoint by
// an injected fault, resumed from the published checkpoint token, and must
// produce byte-identical results — across plan cache on/off and DOP 1/4.
//
// Like test_governor.cc, this binary is a payload of the CI fault matrix:
// every test pins its fault spec explicitly ("none" or a literal spec).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "algos/registry.h"
#include "core/checkpoint.h"
#include "core/explain.h"
#include "core/mutual.h"
#include "core/plan.h"
#include "core/with_plus.h"
#include "exec/exec_context.h"
#include "exec/retry.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "test_util.h"

namespace gpr {
namespace {

namespace ops = ra::ops;
using core::CheckpointStore;
using core::ExecuteMutual;
using core::ExecuteWithPlus;
using core::FixpointCheckpoint;
using core::JoinOp;
using core::MutualQuery;
using core::MutualRelation;
using core::OracleLike;
using core::ProjectOp;
using core::RenameOp;
using core::Scan;
using core::UnionMode;
using core::WithPlusQuery;
using exec::ProgressDetail;
using exec::RetryPolicy;
using exec::RetryState;
using gpr::testing::MakeCatalog;
using gpr::testing::TinyDag;
using gpr::testing::TinyGraph;
using ra::Col;
using ra::Schema;
using ra::Table;
using ra::ValueType;

/// Degree of parallelism for every query this binary runs (the CI fault
/// matrix re-runs the suite with GPR_TEST_DOP set).
int TestDop() {
  const char* v = std::getenv("GPR_TEST_DOP");
  const int dop = v != nullptr ? std::atoi(v) : 0;
  return dop > 0 ? dop : 0;
}

/// Plan-state-cache override (GPR_TEST_CACHE, see test_governor.cc).
int TestCache() {
  const char* v = std::getenv("GPR_TEST_CACHE");
  return v != nullptr ? std::atoi(v) : -1;
}

/// CSR-kernel override (GPR_TEST_KERNELS, see test_governor.cc).
int TestKernels() {
  const char* v = std::getenv("GPR_TEST_KERNELS");
  return v != nullptr ? std::atoi(v) : -1;
}

/// Vectorized-batch override (GPR_TEST_VECTORIZE, see test_governor.cc).
int TestVectorize() {
  const char* v = std::getenv("GPR_TEST_VECTORIZE");
  return v != nullptr ? std::atoi(v) : -1;
}

/// Pins an environment variable for the lifetime of a test, restoring the
/// previous value on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_ = old != nullptr;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string saved_;
  bool had_ = false;
};

/// Asserts `a` and `b` hold identical rows in identical order.
void ExpectRowsIdentical(const Table& a, const Table& b,
                         const std::string& label) {
  ASSERT_EQ(a.NumRows(), b.NumRows()) << label;
  for (size_t i = 0; i < a.NumRows(); ++i) {
    EXPECT_TRUE(a.row(i) == b.row(i)) << label << ": row " << i << " differs";
  }
}

/// TC over E; `spec` pins the fault-injection behaviour.
WithPlusQuery TcQuery(UnionMode mode, const std::string& spec = "none") {
  WithPlusQuery q;
  q.rec_name = "TCr";
  q.rec_schema = Schema{{"F", ValueType::kInt64}, {"T", ValueType::kInt64}};
  q.init.push_back(
      {ProjectOp(Scan("E"), {ops::As(Col("F"), "F"), ops::As(Col("T"), "T")}),
       {}});
  q.recursive.push_back(
      {ProjectOp(JoinOp(Scan("TCr"), Scan("E"), {{"T"}, {"F"}}),
                 {ops::As(Col("TCr.F"), "F"), ops::As(Col("E.T"), "T")}),
       {}});
  q.mode = mode;
  q.fault_spec = spec;
  q.degree_of_parallelism = TestDop();
  q.plan_cache = TestCache();
  q.csr_kernels = TestKernels();
  q.vectorized = TestVectorize();
  return q;
}

/// Even/odd path reachability — the mutual-recursion engine's test query.
MutualQuery EvenOddQuery(const std::string& spec = "none") {
  MutualQuery q;
  MutualRelation odd;
  odd.name = "OddR";
  odd.schema = Schema{{"F", ValueType::kInt64}, {"T", ValueType::kInt64}};
  odd.init = {ProjectOp(Scan("E"),
                        {ops::As(Col("F"), "F"), ops::As(Col("T"), "T")})};
  odd.recursive.plan =
      ProjectOp(JoinOp(Scan("EvenR"), Scan("E"), {{"T"}, {"F"}}),
                {ops::As(Col("EvenR.F"), "F"), ops::As(Col("E.T"), "T")});
  odd.mode = UnionMode::kUnionDistinct;
  MutualRelation even;
  even.name = "EvenR";
  even.schema = odd.schema;
  even.init = {ProjectOp(
      JoinOp(RenameOp(Scan("E"), "E1"), RenameOp(Scan("E"), "E2"),
             {{"T"}, {"F"}}),
      {ops::As(Col("E1.F"), "F"), ops::As(Col("E2.T"), "T")})};
  even.recursive.plan =
      ProjectOp(JoinOp(Scan("OddR"), Scan("E"), {{"T"}, {"F"}}),
                {ops::As(Col("OddR.F"), "F"), ops::As(Col("E.T"), "T")});
  even.mode = UnionMode::kUnionDistinct;
  q.relations = {std::move(odd), std::move(even)};
  q.fault_spec = spec;
  q.degree_of_parallelism = TestDop();
  return q;
}

/// A small one-row snapshot for the store unit tests.
FixpointCheckpoint SmallCheckpoint(const std::string& rec_table) {
  FixpointCheckpoint cp;
  cp.rec_table = rec_table;
  cp.iterations = 3;
  Table t(rec_table, Schema{{"x", ValueType::kInt64}});
  t.AddRow({int64_t{7}});
  cp.rec = t;
  return cp;
}

// -------------------------------------------------------- CheckpointStore

TEST(CheckpointStore, InsertFindRemove) {
  CheckpointStore store;
  EXPECT_EQ(store.Size(), 0u);
  const std::string token = store.Insert(SmallCheckpoint("R"));
  EXPECT_EQ(token.rfind("ckpt-", 0), 0u) << token;
  EXPECT_EQ(store.Size(), 1u);
  auto found = store.Find(token);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->rec_table, "R");
  EXPECT_EQ(found->iterations, 3u);
  ASSERT_EQ(found->rec.NumRows(), 1u);
  EXPECT_TRUE(store.Remove(token));
  EXPECT_EQ(store.Size(), 0u);
  EXPECT_FALSE(store.Remove(token)) << "second remove must report unknown";
  EXPECT_FALSE(store.Find(token).has_value());
}

// The plan cache keys on (table name, content version); serving a
// restored table under the interrupted run's version would resurrect
// stale artifacts. Find must therefore hand out copies with fresh
// versions (ra::Table copy ctor — see core/checkpoint.h).
TEST(CheckpointStore, FindReturnsCopyWithFreshVersion) {
  CheckpointStore store;
  FixpointCheckpoint cp = SmallCheckpoint("R");
  const uint64_t original_version = cp.rec.version();
  const std::string token = store.Insert(std::move(cp));
  auto first = store.Find(token);
  auto second = store.Find(token);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(first->rec.version(), original_version);
  EXPECT_NE(second->rec.version(), original_version);
  EXPECT_NE(first->rec.version(), second->rec.version());
}

TEST(CheckpointStore, FifoEvictionAtCap) {
  CheckpointStore store;
  std::vector<std::string> tokens;
  for (size_t i = 0; i < CheckpointStore::kMaxEntries + 3; ++i) {
    tokens.push_back(store.Insert(SmallCheckpoint("R")));
  }
  EXPECT_EQ(store.Size(), CheckpointStore::kMaxEntries);
  // The three oldest snapshots were evicted; everything younger survives.
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(store.Find(tokens[i]).has_value()) << tokens[i];
  }
  for (size_t i = 3; i < tokens.size(); ++i) {
    EXPECT_TRUE(store.Find(tokens[i]).has_value()) << tokens[i];
  }
}

TEST(CheckpointStore, UnknownResumeTokenIsNotFound) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  CheckpointStore store;
  auto q = TcQuery(UnionMode::kUnionDistinct);
  q.checkpoint_every = 1;
  q.checkpoint_store = &store;
  q.resume_from = "ckpt-never-issued";
  auto result = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.TableNames(), before);

  auto m = EvenOddQuery();
  m.checkpoint_every = 1;
  m.checkpoint_store = &store;
  m.resume_from = "ckpt-never-issued";
  auto mres = ExecuteMutual(m, catalog, OracleLike());
  ASSERT_FALSE(mres.ok());
  EXPECT_EQ(mres.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.TableNames(), before);
}

// ------------------------------------------------------------------ retry

TEST(Retry, StatusClassification) {
  RetryPolicy p;
  EXPECT_TRUE(exec::RetryableStatus(Status::Unavailable("blip"), p));
  EXPECT_FALSE(exec::RetryableStatus(Status::DeadlineExceeded("slow"), p));
  EXPECT_FALSE(exec::RetryableStatus(Status::ResourceExhausted("big"), p));
  EXPECT_FALSE(exec::RetryableStatus(Status::Cancelled("stop"), p));
  EXPECT_FALSE(exec::RetryableStatus(Status::ExecutionError("torn"), p));
  EXPECT_FALSE(exec::RetryableStatus(Status::OK(), p));
  p.retry_governed = true;
  EXPECT_TRUE(exec::RetryableStatus(Status::DeadlineExceeded("slow"), p));
  EXPECT_TRUE(exec::RetryableStatus(Status::ResourceExhausted("big"), p));
  // Cancellation is intent, not misfortune — never retried.
  EXPECT_FALSE(exec::RetryableStatus(Status::Cancelled("stop"), p));
}

TEST(Retry, StateExhaustsAttempts) {
  RetryPolicy p;
  p.max_attempts = 3;
  RetryState st(p);
  EXPECT_TRUE(st.ShouldRetry(Status::Unavailable("1")));
  EXPECT_TRUE(st.ShouldRetry(Status::Unavailable("2")));
  EXPECT_FALSE(st.ShouldRetry(Status::Unavailable("3")))
      << "third failure exhausts max_attempts=3";
  EXPECT_EQ(st.attempts(), 3);

  RetryState never(RetryPolicy{});  // default max_attempts = 1
  EXPECT_FALSE(never.ShouldRetry(Status::Unavailable("x")));

  RetryState wrong_class(p);
  EXPECT_FALSE(wrong_class.ShouldRetry(Status::ExecutionError("permanent")));
}

TEST(Retry, BackoffIsDeterministicAndCapped) {
  RetryPolicy p;
  p.max_attempts = 8;
  p.backoff_base_ms = 100;
  p.backoff_multiplier = 2.0;
  p.backoff_cap_ms = 300;
  p.jitter_fraction = 0.5;
  p.jitter_seed = 1234;
  RetryState a(p);
  RetryState b(p);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(a.ShouldRetry(Status::Unavailable("x")));
    ASSERT_TRUE(b.ShouldRetry(Status::Unavailable("x")));
    const double da = a.NextBackoffMs();
    const double db = b.NextBackoffMs();
    EXPECT_DOUBLE_EQ(da, db) << "retry " << i << ": same seed, same delay";
    EXPECT_GE(da, 100 * (1 - p.jitter_fraction));
    EXPECT_LE(da, 300 * (1 + p.jitter_fraction));
  }
}

TEST(Retry, BackoffWithoutJitterIsExact) {
  RetryPolicy p;
  p.max_attempts = 8;
  p.backoff_base_ms = 100;
  p.backoff_multiplier = 2.0;
  p.backoff_cap_ms = 1000;
  p.jitter_fraction = 0;
  RetryState st(p);
  const double expected[] = {100, 200, 400, 800, 1000, 1000};
  for (double e : expected) {
    ASSERT_TRUE(st.ShouldRetry(Status::Unavailable("x")));
    EXPECT_DOUBLE_EQ(st.NextBackoffMs(), e);
  }
}

// ---------------------------------------------------------- fault classes

TEST(FaultClasses, TransientFaultIsUnavailable) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  auto q = TcQuery(UnionMode::kUnionDistinct, "iteration:2:transient");
  auto result = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  const ProgressDetail* detail = ProgressDetail::FromStatus(result.status());
  ASSERT_NE(detail, nullptr) << result.status();
  EXPECT_EQ(detail->progress().tripped, "fault");
  EXPECT_EQ(catalog.TableNames(), before);
}

TEST(FaultClasses, PermanentFaultIsExecutionError) {
  auto catalog = MakeCatalog(TinyGraph());
  for (const char* spec : {"iteration:2", "iteration:2:permanent"}) {
    auto q = TcQuery(UnionMode::kUnionDistinct, spec);
    auto result = ExecuteWithPlus(q, catalog, OracleLike());
    ASSERT_FALSE(result.ok()) << spec;
    EXPECT_EQ(result.status().code(), StatusCode::kExecutionError) << spec;
  }
}

TEST(FaultClasses, MalformedClassIsRejected) {
  auto catalog = MakeCatalog(TinyGraph());
  auto q = TcQuery(UnionMode::kUnionDistinct, "iteration:1:bogus");
  auto result = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------- checkpoint/resume core

TEST(CheckpointResume, InterruptedRunPublishesResumeToken) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  CheckpointStore store;
  auto q = TcQuery(UnionMode::kUnionDistinct, "iteration:3");
  q.checkpoint_every = 1;
  q.checkpoint_store = &store;
  auto result = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_FALSE(result.ok());
  const ProgressDetail* detail = ProgressDetail::FromStatus(result.status());
  ASSERT_NE(detail, nullptr) << result.status();
  EXPECT_EQ(detail->progress().iterations, 2u);
  const std::string token = detail->progress().resume_token;
  ASSERT_FALSE(token.empty());
  // The failure path leaves the snapshot in the store — it is what a
  // retry resumes from.
  EXPECT_TRUE(store.Find(token).has_value());
  EXPECT_EQ(catalog.TableNames(), before);
  // The post-mortem rendering surfaces resumability.
  const std::string rendered = detail->ToString();
  EXPECT_NE(rendered.find("resumable=yes"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("resume_token=" + token), std::string::npos)
      << rendered;
}

TEST(CheckpointResume, CheckpointOffPublishesNoToken) {
  auto catalog = MakeCatalog(TinyGraph());
  CheckpointStore store;
  auto q = TcQuery(UnionMode::kUnionDistinct, "iteration:3");
  q.checkpoint_every = 0;
  q.checkpoint_store = &store;
  auto result = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_FALSE(result.ok());
  const ProgressDetail* detail = ProgressDetail::FromStatus(result.status());
  ASSERT_NE(detail, nullptr);
  EXPECT_TRUE(detail->progress().resume_token.empty());
  EXPECT_EQ(store.Size(), 0u);
  EXPECT_NE(detail->ToString().find("resumable=no"), std::string::npos)
      << detail->ToString();
}

TEST(CheckpointResume, ResumeProducesIdenticalResult) {
  auto baseline_catalog = MakeCatalog(TinyGraph());
  auto baseline = ExecuteWithPlus(TcQuery(UnionMode::kUnionDistinct),
                                  baseline_catalog, OracleLike());
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  auto catalog = MakeCatalog(TinyGraph());
  CheckpointStore store;
  auto q = TcQuery(UnionMode::kUnionDistinct, "iteration:3");
  q.checkpoint_every = 1;
  q.checkpoint_store = &store;
  auto interrupted = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_FALSE(interrupted.ok());
  const ProgressDetail* detail =
      ProgressDetail::FromStatus(interrupted.status());
  ASSERT_NE(detail, nullptr);
  const std::string token = detail->progress().resume_token;
  ASSERT_FALSE(token.empty());

  auto resume = TcQuery(UnionMode::kUnionDistinct);
  resume.checkpoint_every = 1;
  resume.checkpoint_store = &store;
  resume.resume_from = token;
  auto resumed = ExecuteWithPlus(resume, catalog, OracleLike());
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ExpectRowsIdentical(baseline->table, resumed->table, "resumed TC");
  // Iteration accounting continues across the resume instead of
  // restarting, and the successful run cleans its token out of the store.
  EXPECT_EQ(resumed->iterations, baseline->iterations);
  EXPECT_EQ(resumed->iters.size(), baseline->iters.size());
  EXPECT_EQ(store.Size(), 0u);
}

// A governed trip (here: the iteration cap) carries the resume token just
// like an injected fault, and lifting the budget on the resumed run
// finishes the fixpoint with identical results.
TEST(CheckpointResume, GovernorTripResumesToIdenticalResult) {
  auto baseline_catalog = MakeCatalog(TinyGraph());
  auto baseline = ExecuteWithPlus(TcQuery(UnionMode::kUnionDistinct),
                                  baseline_catalog, OracleLike());
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  auto catalog = MakeCatalog(TinyGraph());
  CheckpointStore store;
  auto q = TcQuery(UnionMode::kUnionDistinct);
  q.checkpoint_every = 1;
  q.checkpoint_store = &store;
  q.governor.iteration_cap = 2;
  auto tripped = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_FALSE(tripped.ok());
  EXPECT_EQ(tripped.status().code(), StatusCode::kResourceExhausted);
  const ProgressDetail* detail = ProgressDetail::FromStatus(tripped.status());
  ASSERT_NE(detail, nullptr);
  EXPECT_EQ(detail->progress().tripped, "iterations");
  const std::string token = detail->progress().resume_token;
  ASSERT_FALSE(token.empty());

  auto resume = TcQuery(UnionMode::kUnionDistinct);
  resume.checkpoint_every = 1;
  resume.checkpoint_store = &store;
  resume.resume_from = token;
  auto resumed = ExecuteWithPlus(resume, catalog, OracleLike());
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ExpectRowsIdentical(baseline->table, resumed->table, "resumed after cap");
  EXPECT_EQ(resumed->iterations, baseline->iterations);
}

TEST(CheckpointResume, SuccessfulRunLeavesStoreEmpty) {
  auto catalog = MakeCatalog(TinyGraph());
  CheckpointStore store;
  auto q = TcQuery(UnionMode::kUnionDistinct);
  q.checkpoint_every = 1;
  q.checkpoint_store = &store;
  auto result = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(store.Size(), 0u)
      << "snapshots must not outlive the run that published them";
}

TEST(CheckpointResume, MutualInterruptThenResumeIdentical) {
  auto baseline_catalog = MakeCatalog(TinyGraph());
  auto baseline =
      ExecuteMutual(EvenOddQuery(), baseline_catalog, OracleLike());
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  CheckpointStore store;
  auto m = EvenOddQuery("iteration:2");
  m.checkpoint_every = 1;
  m.checkpoint_store = &store;
  auto interrupted = ExecuteMutual(m, catalog, OracleLike());
  ASSERT_FALSE(interrupted.ok());
  EXPECT_EQ(catalog.TableNames(), before);
  const ProgressDetail* detail =
      ProgressDetail::FromStatus(interrupted.status());
  ASSERT_NE(detail, nullptr) << interrupted.status();
  const std::string token = detail->progress().resume_token;
  ASSERT_FALSE(token.empty());

  auto resume = EvenOddQuery();
  resume.checkpoint_every = 1;
  resume.checkpoint_store = &store;
  resume.resume_from = token;
  auto resumed = ExecuteMutual(resume, catalog, OracleLike());
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ASSERT_EQ(resumed->tables.size(), baseline->tables.size());
  for (size_t i = 0; i < baseline->tables.size(); ++i) {
    ExpectRowsIdentical(baseline->tables[i], resumed->tables[i],
                        "mutual relation " + std::to_string(i));
  }
  EXPECT_EQ(resumed->iterations, baseline->iterations);
  EXPECT_EQ(store.Size(), 0u);
}

// ---------------------------------------------------------- chaos harness

// Interrupt every evaluation algorithm mid-fixpoint, resume from the
// published token, and require byte-identical results — across plan cache
// on/off and DOP 1/4. Algorithms that converge before the fault's third
// iteration checkpoint complete uninterrupted; their results must be
// identical anyway, and enough of the set runs long enough that the
// resume path is exercised many times.
TEST(ChaosHarness, EvaluationSetInterruptResumeIdentical) {
  int resumed_runs = 0;
  for (const auto& entry : algos::EvaluationSet(/*include_toposort=*/true)) {
    graph::Graph g = entry.needs_dag ? TinyDag() : TinyGraph();
    std::vector<int64_t> labels;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      labels.push_back(1 + (v % 3));  // LP / KS need VL(ID, label)
    }
    g.set_node_labels(std::move(labels));
    for (int cache : {0, 1}) {
      for (int dop : {1, 4}) {
        const std::string leg = entry.abbrev + " (cache " +
                                std::to_string(cache) + ", dop " +
                                std::to_string(dop) + ")";
        algos::AlgoOptions base;
        base.fault_spec = "none";
        base.plan_cache = cache;
        base.degree_of_parallelism = dop;
        auto baseline_catalog = MakeCatalog(g);
        auto baseline = entry.run(baseline_catalog, base);
        ASSERT_TRUE(baseline.ok()) << leg << ": " << baseline.status();

        CheckpointStore store;
        auto catalog = MakeCatalog(g);
        const auto before = catalog.TableNames();
        algos::AlgoOptions faulty = base;
        faulty.checkpoint_every = 1;
        faulty.checkpoint_store = &store;
        faulty.fault_spec = "iteration:3";
        auto interrupted = entry.run(catalog, faulty);
        if (interrupted.ok()) {
          // Converged before the fault could fire.
          ExpectRowsIdentical(baseline->table, interrupted->table, leg);
          continue;
        }
        ASSERT_EQ(catalog.TableNames(), before) << leg;
        const ProgressDetail* detail =
            ProgressDetail::FromStatus(interrupted.status());
        ASSERT_NE(detail, nullptr)
            << leg << ": " << interrupted.status();
        const std::string token = detail->progress().resume_token;
        ASSERT_FALSE(token.empty()) << leg;

        algos::AlgoOptions resume = base;
        resume.checkpoint_every = 1;
        resume.checkpoint_store = &store;
        resume.resume_from = token;
        auto resumed = entry.run(catalog, resume);
        ASSERT_TRUE(resumed.ok()) << leg << ": " << resumed.status();
        ExpectRowsIdentical(baseline->table, resumed->table, leg);
        ++resumed_runs;
      }
    }
  }
  // The harness is only meaningful if the fault actually interrupted a
  // good share of the runs (10 algorithms x 4 legs).
  EXPECT_GE(resumed_runs, 12) << "chaos fault fired on too few runs";
}

// A recurring transient fault (fails every attempt at the same site) plus
// checkpoint/resume still converges: each retry resumes from the previous
// attempt's snapshot, so the fixpoint makes monotonic progress of one
// iteration per attempt instead of restarting from scratch.
TEST(ChaosHarness, RetryWithResumeMakesMonotonicProgress) {
  auto baseline_catalog = MakeCatalog(TinyGraph());
  auto baseline = ExecuteWithPlus(TcQuery(UnionMode::kUnionDistinct),
                                  baseline_catalog, OracleLike());
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  auto catalog = MakeCatalog(TinyGraph());
  CheckpointStore store;
  auto q = TcQuery(UnionMode::kUnionDistinct);
  algos::AlgoOptions options;
  options.fault_spec = "iteration:2:transient";
  options.checkpoint_every = 1;
  options.checkpoint_store = &store;
  options.plan_cache = TestCache();
  options.degree_of_parallelism = TestDop();
  options.csr_kernels = TestKernels();
  options.vectorized = TestVectorize();
  options.retry.max_attempts = 20;
  options.retry.backoff_base_ms = 0;
  auto result = algos::RunWithPlus(q, catalog, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectRowsIdentical(baseline->table, result->table, "retry+resume TC");
  EXPECT_EQ(result->iterations, baseline->iterations);
  EXPECT_EQ(store.Size(), 0u);
}

// Without checkpointing the same recurring fault can never get past its
// site: the retry loop restarts from scratch each time and exhausts its
// attempts.
TEST(ChaosHarness, RetryWithoutCheckpointCannotPassRecurringFault) {
  auto catalog = MakeCatalog(TinyGraph());
  auto q = TcQuery(UnionMode::kUnionDistinct);
  algos::AlgoOptions options;
  options.fault_spec = "iteration:2:transient";
  options.checkpoint_every = 0;
  options.plan_cache = TestCache();
  options.degree_of_parallelism = TestDop();
  options.csr_kernels = TestKernels();
  options.vectorized = TestVectorize();
  options.retry.max_attempts = 4;
  options.retry.backoff_base_ms = 0;
  auto result = algos::RunWithPlus(q, catalog, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

// ------------------------------------------------------------ SQL surface

TEST(ResilienceSql, CheckpointEveryParsesAndBinds) {
  auto catalog = MakeCatalog(TinyGraph());
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) checkpoint every 4 maxrecursion 3)");
  ASSERT_TRUE(ast.ok()) << ast.status();
  EXPECT_EQ(ast->checkpoint_every, 4);
  auto bound = sql::BindWithStatement(*ast, catalog);
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_EQ(bound->query.checkpoint_every, 4);
}

TEST(ResilienceSql, CheckpointDefaultsToInherit) {
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F))");
  ASSERT_TRUE(ast.ok()) << ast.status();
  EXPECT_EQ(ast->checkpoint_every, -1);
}

TEST(ResilienceSql, DuplicateCheckpointOptionIsAParseError) {
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) checkpoint every 2 checkpoint every 3)");
  ASSERT_FALSE(ast.ok());
  EXPECT_EQ(ast.status().code(), StatusCode::kParseError);
}

TEST(ResilienceSql, OutOfRangeCheckpointIsABindError) {
  auto catalog = MakeCatalog(TinyGraph());
  auto ast = sql::ParseWithStatement(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) checkpoint every 40000)");
  ASSERT_TRUE(ast.ok()) << ast.status();
  auto bound = sql::BindWithStatement(*ast, catalog);
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kBindError);
}

TEST(ResilienceSql, CheckpointHintDoesNotChangeResults) {
  ScopedEnv faults("GPR_FAULTS", nullptr);  // isolate from the CI matrix
  auto catalog = MakeCatalog(TinyGraph());
  auto plain = sql::RunSql(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F))",
      catalog, OracleLike());
  ASSERT_TRUE(plain.ok()) << plain.status();
  auto checkpointed = sql::RunSql(
      "with R(F, T) as ((select F, T from E) union (select R.F, E.T from R, "
      "E where R.T = E.F) checkpoint every 1)",
      catalog, OracleLike());
  ASSERT_TRUE(checkpointed.ok()) << checkpointed.status();
  ExpectRowsIdentical(*plain, *checkpointed, "checkpoint every 1");
}

// -------------------------------------------------------- explain surface

TEST(ResilienceExplain, ShowsCheckpointCadence) {
  auto catalog = MakeCatalog(TinyGraph());
  auto q = TcQuery(UnionMode::kUnionDistinct);
  EXPECT_NE(core::ExplainWithPlus(q, catalog, OracleLike())
                .find("checkpoint: off"),
            std::string::npos);
  q.checkpoint_every = 2;
  const std::string on = core::ExplainWithPlus(q, catalog, OracleLike());
  EXPECT_NE(on.find("checkpoint: every 2 iterations"), std::string::npos)
      << on;
  q.resume_from = "ckpt-9";
  const std::string resuming =
      core::ExplainWithPlus(q, catalog, OracleLike());
  EXPECT_NE(resuming.find("resume from 'ckpt-9'"), std::string::npos)
      << resuming;
}

// ----------------------------------------------------- poll configuration

TEST(PollInterval, ResolutionOrder) {
  {
    ScopedEnv env("GPR_POLL_INTERVAL", nullptr);
    EXPECT_EQ(exec::ResolvePollInterval(0), 8192u);
    EXPECT_EQ(exec::ResolvePollInterval(-3), 8192u);
    EXPECT_EQ(exec::ResolvePollInterval(17), 17u);
  }
  {
    ScopedEnv env("GPR_POLL_INTERVAL", "33");
    EXPECT_EQ(exec::ResolvePollInterval(17), 33u);
  }
  {
    // Garbage / non-positive values fall back to the configured interval.
    ScopedEnv env("GPR_POLL_INTERVAL", "not-a-number");
    EXPECT_EQ(exec::ResolvePollInterval(17), 17u);
  }
  {
    ScopedEnv env("GPR_POLL_INTERVAL", "-5");
    EXPECT_EQ(exec::ResolvePollInterval(17), 17u);
  }
}

// A tiny poll stride changes only how often the governor is consulted —
// never the result rows (morsel decomposition stays fixed).
TEST(PollInterval, StrideDoesNotChangeResults) {
  auto baseline_catalog = MakeCatalog(TinyGraph());
  auto baseline = ExecuteWithPlus(TcQuery(UnionMode::kUnionDistinct),
                                  baseline_catalog, OracleLike());
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  auto catalog = MakeCatalog(TinyGraph());
  core::EngineProfile profile = OracleLike();
  profile.governor_poll_interval = 3;
  auto q = TcQuery(UnionMode::kUnionDistinct);
  q.governor.row_budget = 1000000;  // governed, but far from tripping
  auto result = ExecuteWithPlus(q, catalog, profile);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectRowsIdentical(baseline->table, result->table, "poll stride 3");
}

}  // namespace
}  // namespace gpr
