// Parser + binder + end-to-end SQL tests, driven by the paper's own
// statements (Fig 1 TC, Fig 3 PageRank, Fig 5 TopoSort).
#include <gtest/gtest.h>

#include "algos/algos.h"
#include "baseline/native_algos.h"
#include "core/plan.h"
#include "graph/generators.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "test_util.h"

namespace gpr {
namespace {

using gpr::testing::MakeCatalog;
using gpr::testing::TinyDag;
using gpr::testing::TinyGraph;
using gpr::testing::VectorOf;

TEST(Lexer, TokenizesOperatorsAndLiterals) {
  auto tokens = sql::Lex("select a.b, 1.5e2 <> 'str' -- comment\n <=");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::string> texts;
  for (const auto& t : *tokens) texts.push_back(t.text);
  EXPECT_EQ(texts, (std::vector<std::string>{"select", "a", ".", "b", ",",
                                             "1.5e2", "<>", "str", "<=",
                                             ""}));
  EXPECT_EQ((*tokens)[5].number, 150.0);
  EXPECT_FALSE((*tokens)[5].is_integer);
}

TEST(Lexer, RejectsUnterminatedString) {
  auto tokens = sql::Lex("select 'oops");
  EXPECT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kParseError);
}

TEST(Parser, ParsesFig1TransitiveClosure) {
  auto ast = sql::ParseWithStatement(R"(
    with TC (F, T) as (
      (select F, T from E)
      union all
      (select TC.F, E.T from TC, E where TC.T = E.F))
    select * from TC)");
  ASSERT_TRUE(ast.ok()) << ast.status();
  EXPECT_EQ(ast->rec_name, "TC");
  EXPECT_EQ(ast->rec_columns, (std::vector<std::string>{"F", "T"}));
  ASSERT_EQ(ast->subqueries.size(), 2u);
  ASSERT_EQ(ast->combinators.size(), 1u);
  EXPECT_EQ(ast->combinators[0], sql::CombinatorAst::kUnionAll);
  ASSERT_TRUE(ast->final_select.has_value());
}

TEST(Parser, ParsesFig3PageRank) {
  auto ast = sql::ParseWithStatement(R"(
    with P(ID, W) as (
      (select V.ID, 0.0 from V)
      union by update ID
      (select E.T, 0.85 * sum(W * ew) + 0.15 / 100 from P, E
       where P.ID = E.F group by E.T)
      maxrecursion 10)
    select ID, W from P)");
  ASSERT_TRUE(ast.ok()) << ast.status();
  EXPECT_EQ(ast->rec_name, "P");
  EXPECT_EQ(ast->update_keys, (std::vector<std::string>{"ID"}));
  EXPECT_EQ(ast->maxrecursion, 10);
  ASSERT_EQ(ast->combinators.size(), 1u);
  EXPECT_EQ(ast->combinators[0], sql::CombinatorAst::kUnionByUpdate);
}

TEST(Parser, ParsesComputedByChain) {
  auto ast = sql::ParseWithStatement(R"(
    with Topo(ID, L) as (
      (select ID, 0 from V where ID not in (select E.T from E))
      union all
      (select ID, L from T_n
       computed by
         L_n(L) as select max(L) + 1 from Topo;
         V_1 as select V.ID from V where ID not in (select ID from Topo);
         E_1 as select E.F, E.T from V_1, E where V_1.ID = E.F;
         T_n as select ID, L from V_1, L_n
                where ID not in (select T from E_1);))
    select * from Topo)");
  ASSERT_TRUE(ast.ok()) << ast.status();
  ASSERT_EQ(ast->subqueries.size(), 2u);
  const auto& rec = ast->subqueries[1];
  ASSERT_EQ(rec.computed_by.size(), 4u);
  EXPECT_EQ(rec.computed_by[0].name, "L_n");
  EXPECT_EQ(rec.computed_by[3].name, "T_n");
}

TEST(Parser, ReportsErrorsWithOffsets) {
  auto ast = sql::ParseWithStatement("with R as select");
  EXPECT_FALSE(ast.ok());
  EXPECT_EQ(ast.status().code(), StatusCode::kParseError);
}

TEST(SqlEndToEnd, TransitiveClosureViaSql) {
  auto g = TinyGraph();
  auto catalog = MakeCatalog(g);
  auto result = sql::RunSql(R"(
    with TC (F, T) as (
      (select F, T from E)
      union
      (select TC.F, E.T from TC, E where TC.T = E.F))
    select * from TC)",
                            catalog, core::OracleLike());
  ASSERT_TRUE(result.ok()) << result.status();
  auto expected = baseline::TransitiveClosure(g);
  EXPECT_EQ(result->NumRows(), expected.size());
}

TEST(SqlEndToEnd, PageRankViaSqlMatchesAlgoLibrary) {
  auto g = graph::Rmat(40, 150, 17);
  graph::AttachRandomNodeData(&g, 18);
  auto catalog = MakeCatalog(g);
  const auto n = static_cast<double>(g.num_nodes());

  // The Fig 3 statement (weights from raw E; both paths use ew as stored).
  const std::string stmt = R"(
    with P(ID, W) as (
      (select V.ID, 0.0 from V)
      union by update ID
      (select E.T, 0.85 * sum(W * ew) + 0.15 / )" +
                           std::to_string(n) + R"( from P, E
       where P.ID = E.F group by E.T)
      maxrecursion 8)
    select ID, W from P)";
  auto result = sql::RunSql(stmt, catalog, core::OracleLike());
  ASSERT_TRUE(result.ok()) << result.status();

  auto expected = baseline::PaperPageRank(g, 8, 0.85);
  auto got = VectorOf(*result);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(got.at(v), expected[v], 1e-9) << "node " << v;
  }
}

TEST(SqlEndToEnd, TopoSortViaSqlMatchesNative) {
  auto g = TinyDag();
  auto catalog = MakeCatalog(g);
  auto result = sql::RunSql(R"(
    with Topo(ID, L) as (
      (select ID, 0 from V where ID not in (select E.T from E))
      union all
      (select ID, L from T_n
       computed by
         L_n(L) as select max(L) + 1 from Topo;
         V_1(ID) as select V.ID from V where ID not in (select ID from Topo);
         E_1 as select E.F, E.T from V_1, E where V_1.ID = E.F;
         T_n as select ID, L from V_1, L_n
                where ID not in (select T from E_1);))
    select * from Topo)",
                            catalog, core::OracleLike());
  ASSERT_TRUE(result.ok()) << result.status();
  auto expected = baseline::TopoSortLevels(g);
  auto got = VectorOf(*result);
  ASSERT_EQ(got.size(), static_cast<size_t>(g.num_nodes()));
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(static_cast<int64_t>(got.at(v)), expected[v]) << "node " << v;
  }
}

TEST(SqlEndToEnd, BareAggregateSelect) {
  auto g = TinyGraph();
  auto catalog = MakeCatalog(g);
  auto core_ast = sql::ParseSelect("select count(*) as m from E");
  ASSERT_TRUE(core_ast.ok()) << core_ast.status();
  auto plan = sql::BindSelect(*core_ast, catalog);
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto table = core::ExecutePlan(*plan, catalog, core::OracleLike());
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_EQ(table->NumRows(), 1u);
  EXPECT_EQ(table->row(0)[0].ToInt64(),
            static_cast<int64_t>(g.num_edges()));
}

TEST(SqlEndToEnd, GroupByWithHavingStyleFilterViaWhere) {
  auto g = TinyGraph();
  auto catalog = MakeCatalog(g);
  auto core_ast =
      sql::ParseSelect("select F, count(*) as deg from E group by F");
  ASSERT_TRUE(core_ast.ok()) << core_ast.status();
  auto plan = sql::BindSelect(*core_ast, catalog);
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto table = core::ExecutePlan(*plan, catalog, core::OracleLike());
  ASSERT_TRUE(table.ok()) << table.status();
  auto got = VectorOf(*table);
  for (const auto& [node, deg] : got) {
    EXPECT_EQ(static_cast<size_t>(deg), g.OutDegree(node));
  }
}

TEST(SqlBinder, RejectsUnknownColumnsAndTables) {
  auto g = TinyGraph();
  auto catalog = MakeCatalog(g);
  auto bad_table = sql::ParseSelect("select x from Nope");
  ASSERT_TRUE(bad_table.ok());
  auto plan = sql::BindSelect(*bad_table, catalog);
  EXPECT_FALSE(plan.ok());

  auto bad_col = sql::ParseSelect("select nosuch from E");
  ASSERT_TRUE(bad_col.ok());
  auto plan2 = sql::BindSelect(*bad_col, catalog);
  ASSERT_TRUE(plan2.ok());  // binding is lazy for plain columns...
  auto exec = core::ExecutePlan(*plan2, catalog, core::OracleLike());
  EXPECT_FALSE(exec.ok());  // ...but execution resolves and fails
}

TEST(SqlBinder, RejectsMixedUnionByUpdateAndUnionAll) {
  auto g = TinyGraph();
  auto catalog = MakeCatalog(g);
  auto ast = sql::ParseWithStatement(R"(
    with R(ID, W) as (
      (select ID, 0.0 from V)
      union all
      (select ID, vw from V)
      union by update ID
      (select R.ID, R.W from R, E where R.ID = E.F))
    select * from R)");
  ASSERT_TRUE(ast.ok()) << ast.status();
  auto bound = sql::BindWithStatement(*ast, catalog);
  EXPECT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace gpr
