// Tests for the Table 1 compatibility checker: which with+ queries the
// standard recursive with of each engine could run.
#include <gtest/gtest.h>

#include "core/sql99_compat.h"
#include "ra/expr.h"

namespace gpr::core {
namespace {

namespace ops = ra::ops;
using ra::Col;
using ra::Lit;
using ra::Schema;
using ra::ValueType;

/// Plain linear TC with union all — the one query everyone accepts (Fig 1).
WithPlusQuery LinearTc(UnionMode mode = UnionMode::kUnionAll) {
  WithPlusQuery q;
  q.rec_name = "TC";
  q.rec_schema = Schema{{"F", ValueType::kInt64}, {"T", ValueType::kInt64}};
  q.init.push_back({ProjectOp(Scan("E"), {ops::As(Col("F"), "F"),
                                          ops::As(Col("T"), "T")}),
                    {}});
  q.recursive.push_back(
      {ProjectOp(JoinOp(Scan("TC"), Scan("E"), {{"T"}, {"F"}}),
                 {ops::As(Col("TC.F"), "F"), ops::As(Col("E.T"), "T")}),
       {}});
  q.mode = mode;
  return q;
}

TEST(Sql99Compat, LinearUnionAllTcAcceptedEverywhere) {
  for (const auto& profile : AllProfiles()) {
    EXPECT_TRUE(CheckSql99Compatible(LinearTc(), profile).ok())
        << profile.name;
  }
}

TEST(Sql99Compat, UnionDistinctOnlyOnPostgres) {
  WithPlusQuery q = LinearTc(UnionMode::kUnionDistinct);
  EXPECT_TRUE(CheckSql99Compatible(q, PostgresLike()).ok());
  EXPECT_FALSE(CheckSql99Compatible(q, OracleLike()).ok());
  EXPECT_FALSE(CheckSql99Compatible(q, Db2Like()).ok());
}

TEST(Sql99Compat, UnionByUpdateRejectedEverywhere) {
  WithPlusQuery q = LinearTc(UnionMode::kUnionByUpdate);
  q.update_keys = {"F"};
  for (const auto& profile : AllProfiles()) {
    auto st = CheckSql99Compatible(q, profile);
    EXPECT_EQ(st.code(), StatusCode::kNotSupported) << profile.name;
  }
}

TEST(Sql99Compat, AggregationInRecursionRejectedEverywhere) {
  // The Fig 3 PageRank shape: MV-join = join + group by & aggregation.
  WithPlusQuery q;
  q.rec_name = "P";
  q.rec_schema = Schema{{"ID", ValueType::kInt64}, {"W", ValueType::kDouble}};
  q.init.push_back({ProjectOp(Scan("V"), {ops::As(Col("ID"), "ID"),
                                          ops::As(Lit(0.0), "W")}),
                    {}});
  q.recursive.push_back(
      {ProjectOp(GroupByOp(JoinOp(Scan("E"), Scan("P"), {{"F"}, {"ID"}}),
                           {"E.T"},
                           {ra::SumOf(ra::Mul(Col("E.ew"), Col("P.W")), "s")}),
                 {ops::As(Col("T"), "ID"), ops::As(Col("s"), "W")}),
       {}});
  q.mode = UnionMode::kUnionAll;
  for (const auto& profile : AllProfiles()) {
    auto violations = Sql99Violations(q, profile);
    ASSERT_FALSE(violations.empty()) << profile.name;
    bool found_agg = false;
    for (const auto& v : violations) {
      found_agg |= v.feature.find("aggregate") != std::string::npos;
    }
    EXPECT_TRUE(found_agg) << profile.name;
  }
}

TEST(Sql99Compat, NegationAndComputedByRejected) {
  // TopoSort's shape: anti-join + computed by.
  WithPlusQuery q;
  q.rec_name = "Topo";
  q.rec_schema = Schema{{"ID", ValueType::kInt64}};
  q.init.push_back({ProjectOp(Scan("V"), {ops::As(Col("ID"), "ID")}), {}});
  Subquery rec;
  rec.computed_by.push_back(
      {"V1", AntiJoinOp(Scan("V"), Scan("Topo"), {{"ID"}, {"ID"}})});
  rec.plan = ProjectOp(Scan("V1"), {ops::As(Col("ID"), "ID")});
  q.recursive.push_back(std::move(rec));
  q.mode = UnionMode::kUnionAll;

  auto violations = Sql99Violations(q, OracleLike());
  std::set<std::string> features;
  for (const auto& v : violations) features.insert(v.feature);
  EXPECT_TRUE(features.count("negation"));
  EXPECT_TRUE(features.count("computed by"));
}

TEST(Sql99Compat, NonlinearRecursionRejected) {
  // Floyd-Warshall's shape: the recursive relation joined with itself.
  WithPlusQuery q;
  q.rec_name = "D";
  q.rec_schema = Schema{{"F", ValueType::kInt64},
                        {"T", ValueType::kInt64},
                        {"ew", ValueType::kDouble}};
  q.init.push_back({Scan("E"), {}});
  q.recursive.push_back({MMJoinOp(Scan("D"), Scan("D"), MinPlus()), {}});
  q.mode = UnionMode::kUnionAll;
  auto violations = Sql99Violations(q, Db2Like());
  bool nonlinear = false;
  for (const auto& v : violations) {
    nonlinear |= v.feature == "nonlinear recursion";
  }
  EXPECT_TRUE(nonlinear);
}

TEST(Sql99Compat, MultipleRecursiveQueriesOnlyOnDb2) {
  WithPlusQuery q = LinearTc();
  q.recursive.push_back(q.recursive[0]);
  EXPECT_TRUE(CheckSql99Compatible(q, Db2Like()).ok());
  EXPECT_FALSE(CheckSql99Compatible(q, OracleLike()).ok());
  EXPECT_FALSE(CheckSql99Compatible(q, PostgresLike()).ok());
}

TEST(Sql99Compat, GeneralFunctionsRejectedOnDb2Only) {
  WithPlusQuery q = LinearTc();
  // Attach a sqrt() call to the recursive projection.
  q.recursive[0] = {
      ProjectOp(JoinOp(Scan("TC"), Scan("E"), {{"T"}, {"F"}}),
                {ops::As(Col("TC.F"), "F"),
                 ops::As(ra::Call("sqrt", {Col("E.T")}), "T")}),
      {}};
  EXPECT_FALSE(CheckSql99Compatible(q, Db2Like()).ok());
  EXPECT_TRUE(CheckSql99Compatible(q, OracleLike()).ok());
  EXPECT_TRUE(CheckSql99Compatible(q, PostgresLike()).ok());
}

}  // namespace
}  // namespace gpr::core
