// Correctness of the SQL'99-legal query forms used in Exp-C: the Fig 9
// PageRank (union all + partition-by emulation + distinct) and the
// with-vs-with+ tuple accounting of Fig 12.
#include <gtest/gtest.h>

#include <map>

#include "algos/algos.h"
#include "baseline/native_algos.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gpr {
namespace {

using gpr::testing::MakeCatalog;
using graph::Graph;

TEST(PageRankSql99, FinalGenerationMatchesWithPlus) {
  // PostgreSQL's recursive term sees only the previous generation, so a
  // node whose in-neighbours stall drops out of later generations and
  // stops contributing — with+ equality therefore holds exactly on graphs
  // where every non-isolated node keeps active in-neighbours, e.g. any
  // symmetrized graph. (On general digraphs the two forms genuinely
  // diverge — a subtlety Fig 9 glosses over; see the next test.)
  Graph raw = graph::Rmat(50, 220, 31);
  Graph g(raw.num_nodes(),
          graph::DedupeEdges(graph::Symmetrize(raw.EdgeList())));
  const int d = 6;

  algos::AlgoOptions opt;
  opt.max_iterations = d;

  auto catalog_plus = MakeCatalog(g);
  auto plus = algos::PageRank(catalog_plus, opt);
  ASSERT_TRUE(plus.ok()) << plus.status();

  auto catalog_99 = MakeCatalog(g);
  auto sql99 = algos::PageRankSql99(catalog_99, opt);
  ASSERT_TRUE(sql99.ok()) << sql99.status();

  // Rows of the final generation L = d carry the same values the with+
  // form holds after d updates (for nodes with in-edges; others never
  // enter a generation).
  std::map<int64_t, double> final_gen;
  for (const auto& row : sql99->table.rows()) {
    if (row[2].ToInt64() == d) final_gen[row[0].ToInt64()] = row[1].ToDouble();
  }
  ASSERT_FALSE(final_gen.empty());
  auto plus_map = gpr::testing::VectorOf(plus->table);
  for (const auto& [id, w] : final_gen) {
    EXPECT_NEAR(w, plus_map.at(id), 1e-9) << "node " << id;
  }
  // Every node with an in-edge must be present in the final generation.
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.InDegree(v) > 0) {
      EXPECT_TRUE(final_gen.count(v)) << "node " << v;
    }
  }
}

TEST(PageRankSql99, MatchesGenerationSemanticsOnDigraphs) {
  // Native mirror of the true working-table semantics on a general
  // digraph: generation L sums only over members of generation L-1.
  Graph g = graph::Rmat(40, 160, 35);
  const int d = 5;
  const double c = 0.85;
  const double n = static_cast<double>(g.num_nodes());

  auto catalog = MakeCatalog(g);
  algos::AlgoOptions opt;
  opt.max_iterations = d;
  auto sql99 = algos::PageRankSql99(catalog, opt);
  ASSERT_TRUE(sql99.ok()) << sql99.status();

  std::map<int64_t, double> gen;  // generation 0: every node at 0
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) gen[v] = 0.0;
  for (int it = 0; it < d; ++it) {
    std::map<int64_t, double> next;
    for (const auto& [f, w] : gen) {
      const auto nbrs = g.OutNeighbors(f);
      for (size_t i = 0; i < nbrs.size; ++i) {
        next[nbrs.ids[i]] +=
            w / static_cast<double>(g.OutDegree(f));
      }
    }
    for (auto& [t, sum] : next) sum = c * sum + (1.0 - c) / n;
    gen = std::move(next);
  }
  std::map<int64_t, double> final_gen;
  for (const auto& row : sql99->table.rows()) {
    if (row[2].ToInt64() == d) final_gen[row[0].ToInt64()] = row[1].ToDouble();
  }
  ASSERT_EQ(final_gen.size(), gen.size());
  for (const auto& [id, w] : gen) {
    EXPECT_NEAR(final_gen.at(id), w, 1e-9) << "node " << id;
  }
}

TEST(PageRankSql99, TupleGrowthIsLinearInIterations) {
  Graph raw = graph::Rmat(60, 250, 32);
  Graph g(raw.num_nodes(),
          graph::DedupeEdges(graph::Symmetrize(raw.EdgeList())));
  const int d = 5;
  algos::AlgoOptions opt;
  opt.max_iterations = d;
  auto catalog = MakeCatalog(g);
  auto sql99 = algos::PageRankSql99(catalog, opt);
  ASSERT_TRUE(sql99.ok()) << sql99.status();
  // Generation sizes: n initial + one batch (nodes with in-edges) per
  // iteration — Fig 12(b)'s linear growth.
  size_t with_in_edges = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    with_in_edges += g.InDegree(v) > 0;
  }
  ASSERT_EQ(sql99->iters.size(), static_cast<size_t>(d) + 1);
  for (int i = 0; i < d; ++i) {
    EXPECT_EQ(sql99->iters[i].rec_rows,
              static_cast<size_t>(g.num_nodes()) + (i + 1) * with_in_edges)
        << "iteration " << i;
  }
  // The cap iteration produces an empty delta (L = d filtered out).
  EXPECT_TRUE(sql99->converged);
}

TEST(Rwr, MatchesNativeMirror) {
  Graph g = graph::Rmat(45, 200, 33);
  const int iters = 8;
  const double restart = 0.2;

  auto catalog = MakeCatalog(g);
  algos::AlgoOptions opt;
  opt.source = 3;
  opt.max_iterations = iters;
  opt.restart_prob = restart;
  auto rwr = algos::RandomWalkWithRestart(catalog, opt);
  ASSERT_TRUE(rwr.ok()) << rwr.status();

  // Native mirror of Eq. 10 over out-normalized edges: nodes with in-edges
  // get c·Σ W(f)·ew + (1-c)·P(t); others keep their value.
  const double c = 1.0 - restart;
  std::vector<double> w(g.num_nodes(), 0.0);
  w[3] = 1.0;
  std::vector<double> next(g.num_nodes());
  for (int it = 0; it < iters; ++it) {
    for (graph::NodeId t = 0; t < g.num_nodes(); ++t) {
      if (g.InDegree(t) == 0) {
        next[t] = w[t];
        continue;
      }
      double sum = 0;
      const auto nbrs = g.InNeighbors(t);
      for (size_t i = 0; i < nbrs.size; ++i) {
        sum += w[nbrs.ids[i]] /
               static_cast<double>(g.OutDegree(nbrs.ids[i]));
      }
      next[t] = c * sum + (1.0 - c) * (t == 3 ? 1.0 : 0.0);
    }
    std::swap(w, next);
  }
  auto got = gpr::testing::VectorOf(rwr->table);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_NEAR(got.at(v), w[v], 1e-9) << "node " << v;
  }
}

TEST(TcVariants, UnionDistinctAndUnionAllAgreeOnDags) {
  // On a DAG union all terminates naturally; the deduplicated result must
  // equal the union-distinct fixpoint.
  Graph g = graph::RandomDag(12, 18, 34);  // union-all stores one tuple per
                                           // path; keep the DAG tiny
  auto catalog1 = MakeCatalog(g);
  algos::AlgoOptions opt;
  opt.depth = 0;
  auto distinct = algos::TransitiveClosure(catalog1, opt);
  ASSERT_TRUE(distinct.ok()) << distinct.status();

  auto catalog2 = MakeCatalog(g);
  core::WithPlusQuery q;
  namespace ops = ra::ops;
  q.rec_name = "TCall";
  q.rec_schema = ra::Schema{{"F", ra::ValueType::kInt64},
                            {"T", ra::ValueType::kInt64}};
  q.init.push_back({core::ProjectOp(core::Scan("E"),
                                    {ops::As(ra::Col("F"), "F"),
                                     ops::As(ra::Col("T"), "T")}),
                    {}});
  q.recursive.push_back(
      {core::ProjectOp(core::JoinOp(core::Scan("TCall"), core::Scan("E"),
                                    {{"T"}, {"F"}}),
                       {ops::As(ra::Col("TCall.F"), "F"),
                        ops::As(ra::Col("E.T"), "T")}),
       {}});
  q.mode = core::UnionMode::kUnionAll;
  // SQL'99 engines evaluate the recursive term against the working table;
  // that is what makes union-all TC terminate on a DAG.
  q.sql99_working_table = true;
  auto all = core::ExecuteWithPlus(q, catalog2, core::OracleLike());
  ASSERT_TRUE(all.ok()) << all.status();
  EXPECT_TRUE(all->converged);
  auto deduped = ra::ops::Distinct(all->table);
  ASSERT_TRUE(deduped.ok());
  EXPECT_TRUE(deduped->SameRowsAs(distinct->table));
  // union all accumulated duplicates (one per distinct path).
  EXPECT_GE(all->table.NumRows(), deduped->NumRows());
}

}  // namespace
}  // namespace gpr
