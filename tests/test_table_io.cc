// CSV round-trip tests for relations, plus the atomic-write contract:
// a fault at any I/O site (io_open / io_write / io_fsync / io_rename)
// must leave the previous file contents intact and no temp file behind
// (docs/robustness.md; linted by GPR-C408).
#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "exec/fault_injector.h"
#include "ra/table_io.h"

namespace gpr::ra {
namespace {

/// True if any staging temp (`<path>.tmp.<pid>.<n>` — the suffix is
/// unique per call, so scan the directory for the prefix) was left
/// behind by AtomicWriteFile.
bool TempLeftBehind(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const std::string prefix =
      (slash == std::string::npos ? path : path.substr(slash + 1)) + ".tmp.";
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return false;
  bool found = false;
  while (const dirent* e = ::readdir(d)) {
    if (std::string(e->d_name).rfind(prefix, 0) == 0) {
      found = true;
      break;
    }
  }
  ::closedir(d);
  return found;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return static_cast<bool>(in);
}

TEST(TableIo, RoundTripAllTypes) {
  Table t("T", Schema{{"i", ValueType::kInt64},
                      {"d", ValueType::kDouble},
                      {"s", ValueType::kString}});
  t.AddRow({int64_t{1}, 2.5, "plain"});
  t.AddRow({int64_t{-7}, 1e-12, "with,comma"});
  t.AddRow({Value::Null(), Value::Null(), "he said \"hi\""});
  t.AddRow({int64_t{0}, -3.25, ""});  // empty *quoted* string is not NULL

  const std::string path = ::testing::TempDir() + "/gpr_io.csv";
  ASSERT_TRUE(SaveCsv(t, path).ok());
  auto loaded = LoadCsv(path, "T2");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->name(), "T2");
  EXPECT_EQ(loaded->schema().ToString(), t.schema().ToString());
  ASSERT_TRUE(loaded->SameRowsAs(t)) << loaded->ToString(0) << t.ToString(0);
  std::remove(path.c_str());
}

TEST(TableIo, DoubleRoundTripIsExact) {
  Table t("T", Schema{{"d", ValueType::kDouble}});
  t.AddRow({0.1});
  t.AddRow({1.0 / 3.0});
  t.AddRow({1e300});
  const std::string path = ::testing::TempDir() + "/gpr_io_d.csv";
  ASSERT_TRUE(SaveCsv(t, path).ok());
  auto loaded = LoadCsv(path, "T");
  ASSERT_TRUE(loaded.ok());
  for (size_t i = 0; i < t.NumRows(); ++i) {
    EXPECT_EQ(loaded->row(i)[0].AsDouble(), t.row(i)[0].AsDouble());
  }
  std::remove(path.c_str());
}

TEST(TableIo, Errors) {
  EXPECT_EQ(LoadCsv("/no/such/file.csv", "X").status().code(),
            StatusCode::kIoError);
  // Malformed header.
  const std::string path = ::testing::TempDir() + "/gpr_io_bad.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("justaname\n1\n", f);
    fclose(f);
  }
  EXPECT_EQ(LoadCsv(path, "X").status().code(), StatusCode::kIoError);
  // Wrong field count.
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("a:Int64,b:Int64\n1\n", f);
    fclose(f);
  }
  auto r = LoadCsv(path, "X");
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

// ------------------------------------------------------- atomic writes

TEST(TableIoAtomic, AtomicWriteFileReplacesContentAndLeavesNoTemp) {
  const std::string path = ::testing::TempDir() + "/gpr_atomic.txt";
  ASSERT_TRUE(AtomicWriteFile(path, "first\n").ok());
  EXPECT_EQ(ReadWholeFile(path), "first\n");
  ASSERT_TRUE(AtomicWriteFile(path, "second\n").ok());
  EXPECT_EQ(ReadWholeFile(path), "second\n");
  EXPECT_FALSE(TempLeftBehind(path));
  std::remove(path.c_str());
}

// A fault at every staged I/O site in turn: the previous contents must
// survive byte-for-byte and the temp file must be cleaned up — a torn
// table file is exactly what the temp+fsync+rename protocol rules out.
TEST(TableIoAtomic, FaultAtAnySiteLeavesTargetIntact) {
  const std::string path = ::testing::TempDir() + "/gpr_atomic_fault.txt";
  ASSERT_TRUE(AtomicWriteFile(path, "durable\n").ok());
  for (const char* spec :
       {"io_open:1", "io_write:1", "io_fsync:1", "io_rename:1"}) {
    auto faults = exec::FaultInjector::FromSpec(spec);
    ASSERT_TRUE(faults.ok()) << spec;
    Status s = AtomicWriteFile(path, "torn!", &*faults);
    ASSERT_FALSE(s.ok()) << spec;
    EXPECT_EQ(s.code(), StatusCode::kExecutionError) << spec;
    EXPECT_EQ(ReadWholeFile(path), "durable\n") << spec;
    EXPECT_FALSE(TempLeftBehind(path)) << spec;
  }
  std::remove(path.c_str());
}

// Concurrent writers to the same target must each stage into their own
// temp file: every write lands complete (one of the writers' full
// contents, never an interleaving) and no staging file survives.
TEST(TableIoAtomic, ConcurrentWritersNeverShareAStagingFile) {
  const std::string path = ::testing::TempDir() + "/gpr_atomic_conc.txt";
  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  std::vector<std::string> payloads;
  for (int t = 0; t < kThreads; ++t) {
    payloads.push_back(std::string(1024, static_cast<char>('a' + t)) + "\n");
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        // EXPECT (not ASSERT): gtest fatal failures don't propagate out
        // of secondary threads.
        EXPECT_TRUE(AtomicWriteFile(path, payloads[t]).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  const std::string got = ReadWholeFile(path);
  EXPECT_NE(std::find(payloads.begin(), payloads.end(), got),
            payloads.end())
      << "target holds an interleaved / torn write";
  EXPECT_FALSE(TempLeftBehind(path));
  std::remove(path.c_str());
}

TEST(TableIoAtomic, TransientFaultClassPropagates) {
  const std::string path = ::testing::TempDir() + "/gpr_atomic_tr.txt";
  auto faults = exec::FaultInjector::FromSpec("io_write:1:transient");
  ASSERT_TRUE(faults.ok());
  Status s = AtomicWriteFile(path, "x", &*faults);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(TempLeftBehind(path));
}

TEST(TableIoAtomic, SaveCsvFaultPreservesPreviousSnapshot) {
  Table t("T", Schema{{"i", ValueType::kInt64}});
  t.AddRow({int64_t{1}});
  const std::string path = ::testing::TempDir() + "/gpr_atomic_csv.csv";
  ASSERT_TRUE(SaveCsv(t, path).ok());
  const std::string before = ReadWholeFile(path);

  t.AddRow({int64_t{2}});
  auto faults = exec::FaultInjector::FromSpec("io_rename:1");
  ASSERT_TRUE(faults.ok());
  ASSERT_FALSE(SaveCsv(t, path, &*faults).ok());
  EXPECT_EQ(ReadWholeFile(path), before) << "old snapshot must survive";

  // Without the fault the save goes through and loads back both rows.
  ASSERT_TRUE(SaveCsv(t, path).ok());
  auto loaded = LoadCsv(path, "T");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumRows(), 2u);
  std::remove(path.c_str());
}

TEST(TableIoAtomic, LoadCsvConsultsReadSites) {
  Table t("T", Schema{{"i", ValueType::kInt64}});
  t.AddRow({int64_t{1}});
  t.AddRow({int64_t{2}});
  const std::string path = ::testing::TempDir() + "/gpr_atomic_load.csv";
  ASSERT_TRUE(SaveCsv(t, path).ok());

  auto open_fault = exec::FaultInjector::FromSpec("io_open:1");
  ASSERT_TRUE(open_fault.ok());
  EXPECT_FALSE(LoadCsv(path, "T", &*open_fault).ok());

  auto read_fault = exec::FaultInjector::FromSpec("io_read:2");
  ASSERT_TRUE(read_fault.ok());
  EXPECT_FALSE(LoadCsv(path, "T", &*read_fault).ok());

  auto clean = LoadCsv(path, "T");
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(clean->NumRows(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gpr::ra
