// CSV round-trip tests for relations.
#include <gtest/gtest.h>

#include <cstdio>

#include "ra/table_io.h"

namespace gpr::ra {
namespace {

TEST(TableIo, RoundTripAllTypes) {
  Table t("T", Schema{{"i", ValueType::kInt64},
                      {"d", ValueType::kDouble},
                      {"s", ValueType::kString}});
  t.AddRow({int64_t{1}, 2.5, "plain"});
  t.AddRow({int64_t{-7}, 1e-12, "with,comma"});
  t.AddRow({Value::Null(), Value::Null(), "he said \"hi\""});
  t.AddRow({int64_t{0}, -3.25, ""});  // empty *quoted* string is not NULL

  const std::string path = ::testing::TempDir() + "/gpr_io.csv";
  ASSERT_TRUE(SaveCsv(t, path).ok());
  auto loaded = LoadCsv(path, "T2");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->name(), "T2");
  EXPECT_EQ(loaded->schema().ToString(), t.schema().ToString());
  ASSERT_TRUE(loaded->SameRowsAs(t)) << loaded->ToString(0) << t.ToString(0);
  std::remove(path.c_str());
}

TEST(TableIo, DoubleRoundTripIsExact) {
  Table t("T", Schema{{"d", ValueType::kDouble}});
  t.AddRow({0.1});
  t.AddRow({1.0 / 3.0});
  t.AddRow({1e300});
  const std::string path = ::testing::TempDir() + "/gpr_io_d.csv";
  ASSERT_TRUE(SaveCsv(t, path).ok());
  auto loaded = LoadCsv(path, "T");
  ASSERT_TRUE(loaded.ok());
  for (size_t i = 0; i < t.NumRows(); ++i) {
    EXPECT_EQ(loaded->row(i)[0].AsDouble(), t.row(i)[0].AsDouble());
  }
  std::remove(path.c_str());
}

TEST(TableIo, Errors) {
  EXPECT_EQ(LoadCsv("/no/such/file.csv", "X").status().code(),
            StatusCode::kIoError);
  // Malformed header.
  const std::string path = ::testing::TempDir() + "/gpr_io_bad.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("justaname\n1\n", f);
    fclose(f);
  }
  EXPECT_EQ(LoadCsv(path, "X").status().code(), StatusCode::kIoError);
  // Wrong field count.
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("a:Int64,b:Int64\n1\n", f);
    fclose(f);
  }
  auto r = LoadCsv(path, "X");
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gpr::ra
