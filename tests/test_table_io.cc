// CSV round-trip tests for relations, plus the atomic-write contract:
// a fault at any I/O site (io_open / io_write / io_fsync / io_rename)
// must leave the previous file contents intact and no temp file behind
// (docs/robustness.md; linted by GPR-C408).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "exec/fault_injector.h"
#include "ra/table_io.h"

namespace gpr::ra {
namespace {

/// The temp name AtomicWriteFile stages into before the rename.
std::string TmpPathFor(const std::string& path) {
  return path + ".tmp." + std::to_string(::getpid());
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return static_cast<bool>(in);
}

TEST(TableIo, RoundTripAllTypes) {
  Table t("T", Schema{{"i", ValueType::kInt64},
                      {"d", ValueType::kDouble},
                      {"s", ValueType::kString}});
  t.AddRow({int64_t{1}, 2.5, "plain"});
  t.AddRow({int64_t{-7}, 1e-12, "with,comma"});
  t.AddRow({Value::Null(), Value::Null(), "he said \"hi\""});
  t.AddRow({int64_t{0}, -3.25, ""});  // empty *quoted* string is not NULL

  const std::string path = ::testing::TempDir() + "/gpr_io.csv";
  ASSERT_TRUE(SaveCsv(t, path).ok());
  auto loaded = LoadCsv(path, "T2");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->name(), "T2");
  EXPECT_EQ(loaded->schema().ToString(), t.schema().ToString());
  ASSERT_TRUE(loaded->SameRowsAs(t)) << loaded->ToString(0) << t.ToString(0);
  std::remove(path.c_str());
}

TEST(TableIo, DoubleRoundTripIsExact) {
  Table t("T", Schema{{"d", ValueType::kDouble}});
  t.AddRow({0.1});
  t.AddRow({1.0 / 3.0});
  t.AddRow({1e300});
  const std::string path = ::testing::TempDir() + "/gpr_io_d.csv";
  ASSERT_TRUE(SaveCsv(t, path).ok());
  auto loaded = LoadCsv(path, "T");
  ASSERT_TRUE(loaded.ok());
  for (size_t i = 0; i < t.NumRows(); ++i) {
    EXPECT_EQ(loaded->row(i)[0].AsDouble(), t.row(i)[0].AsDouble());
  }
  std::remove(path.c_str());
}

TEST(TableIo, Errors) {
  EXPECT_EQ(LoadCsv("/no/such/file.csv", "X").status().code(),
            StatusCode::kIoError);
  // Malformed header.
  const std::string path = ::testing::TempDir() + "/gpr_io_bad.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("justaname\n1\n", f);
    fclose(f);
  }
  EXPECT_EQ(LoadCsv(path, "X").status().code(), StatusCode::kIoError);
  // Wrong field count.
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("a:Int64,b:Int64\n1\n", f);
    fclose(f);
  }
  auto r = LoadCsv(path, "X");
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

// ------------------------------------------------------- atomic writes

TEST(TableIoAtomic, AtomicWriteFileReplacesContentAndLeavesNoTemp) {
  const std::string path = ::testing::TempDir() + "/gpr_atomic.txt";
  ASSERT_TRUE(AtomicWriteFile(path, "first\n").ok());
  EXPECT_EQ(ReadWholeFile(path), "first\n");
  ASSERT_TRUE(AtomicWriteFile(path, "second\n").ok());
  EXPECT_EQ(ReadWholeFile(path), "second\n");
  EXPECT_FALSE(FileExists(TmpPathFor(path)));
  std::remove(path.c_str());
}

// A fault at every staged I/O site in turn: the previous contents must
// survive byte-for-byte and the temp file must be cleaned up — a torn
// table file is exactly what the temp+fsync+rename protocol rules out.
TEST(TableIoAtomic, FaultAtAnySiteLeavesTargetIntact) {
  const std::string path = ::testing::TempDir() + "/gpr_atomic_fault.txt";
  ASSERT_TRUE(AtomicWriteFile(path, "durable\n").ok());
  for (const char* spec :
       {"io_open:1", "io_write:1", "io_fsync:1", "io_rename:1"}) {
    auto faults = exec::FaultInjector::FromSpec(spec);
    ASSERT_TRUE(faults.ok()) << spec;
    Status s = AtomicWriteFile(path, "torn!", &*faults);
    ASSERT_FALSE(s.ok()) << spec;
    EXPECT_EQ(s.code(), StatusCode::kExecutionError) << spec;
    EXPECT_EQ(ReadWholeFile(path), "durable\n") << spec;
    EXPECT_FALSE(FileExists(TmpPathFor(path))) << spec;
  }
  std::remove(path.c_str());
}

TEST(TableIoAtomic, TransientFaultClassPropagates) {
  const std::string path = ::testing::TempDir() + "/gpr_atomic_tr.txt";
  auto faults = exec::FaultInjector::FromSpec("io_write:1:transient");
  ASSERT_TRUE(faults.ok());
  Status s = AtomicWriteFile(path, "x", &*faults);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(FileExists(TmpPathFor(path)));
}

TEST(TableIoAtomic, SaveCsvFaultPreservesPreviousSnapshot) {
  Table t("T", Schema{{"i", ValueType::kInt64}});
  t.AddRow({int64_t{1}});
  const std::string path = ::testing::TempDir() + "/gpr_atomic_csv.csv";
  ASSERT_TRUE(SaveCsv(t, path).ok());
  const std::string before = ReadWholeFile(path);

  t.AddRow({int64_t{2}});
  auto faults = exec::FaultInjector::FromSpec("io_rename:1");
  ASSERT_TRUE(faults.ok());
  ASSERT_FALSE(SaveCsv(t, path, &*faults).ok());
  EXPECT_EQ(ReadWholeFile(path), before) << "old snapshot must survive";

  // Without the fault the save goes through and loads back both rows.
  ASSERT_TRUE(SaveCsv(t, path).ok());
  auto loaded = LoadCsv(path, "T");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumRows(), 2u);
  std::remove(path.c_str());
}

TEST(TableIoAtomic, LoadCsvConsultsReadSites) {
  Table t("T", Schema{{"i", ValueType::kInt64}});
  t.AddRow({int64_t{1}});
  t.AddRow({int64_t{2}});
  const std::string path = ::testing::TempDir() + "/gpr_atomic_load.csv";
  ASSERT_TRUE(SaveCsv(t, path).ok());

  auto open_fault = exec::FaultInjector::FromSpec("io_open:1");
  ASSERT_TRUE(open_fault.ok());
  EXPECT_FALSE(LoadCsv(path, "T", &*open_fault).ok());

  auto read_fault = exec::FaultInjector::FromSpec("io_read:2");
  ASSERT_TRUE(read_fault.ok());
  EXPECT_FALSE(LoadCsv(path, "T", &*read_fault).ok());

  auto clean = LoadCsv(path, "T");
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(clean->NumRows(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gpr::ra
