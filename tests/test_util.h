// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/relations.h"
#include "ra/catalog.h"
#include "ra/table.h"

namespace gpr::testing {

/// Builds a catalog holding E/V(/VL) for the graph.
inline ra::Catalog MakeCatalog(const graph::Graph& g) {
  ra::Catalog catalog;
  auto st = graph::RegisterGraph(g, &catalog);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return catalog;
}

/// Extracts a map ID -> value from a two-column (ID, value) table.
inline std::map<int64_t, double> VectorOf(const ra::Table& t) {
  std::map<int64_t, double> out;
  EXPECT_GE(t.schema().NumColumns(), 2u);
  for (const auto& row : t.rows()) {
    out[row[0].ToInt64()] = row[1].is_null() ? 0.0 : row[1].ToDouble();
  }
  return out;
}

/// Extracts a map (F, T) -> ew from a three-column matrix table.
inline std::map<std::pair<int64_t, int64_t>, double> MatrixOf(
    const ra::Table& t) {
  std::map<std::pair<int64_t, int64_t>, double> out;
  EXPECT_GE(t.schema().NumColumns(), 3u);
  for (const auto& row : t.rows()) {
    out[{row[0].ToInt64(), row[1].ToInt64()}] =
        row[2].is_null() ? 0.0 : row[2].ToDouble();
  }
  return out;
}

/// A tiny fixed graph used across tests:
///
///   0 → 1 → 2 → 3      4 → 5 (separate component)
///   0 → 2   3 → 1 (cycle 1→2→3→1)
inline graph::Graph TinyGraph() {
  std::vector<graph::Edge> edges = {
      {0, 1, 1.0}, {0, 2, 1.0}, {1, 2, 1.0},
      {2, 3, 1.0}, {3, 1, 1.0}, {4, 5, 1.0},
  };
  graph::Graph g(6, std::move(edges));
  graph::Graph with_data = g;
  return with_data;
}

/// A small DAG: 0→1, 0→2, 1→3, 2→3, 3→4.
inline graph::Graph TinyDag() {
  std::vector<graph::Edge> edges = {
      {0, 1, 1.0}, {0, 2, 1.0}, {1, 3, 1.0}, {2, 3, 1.0}, {3, 4, 1.0},
  };
  return graph::Graph(5, std::move(edges));
}

}  // namespace gpr::testing
