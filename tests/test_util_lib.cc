// Tests for the util library: Status/Result, string helpers, PRNG.
#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace gpr {
namespace {

TEST(Status, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::NotFound("table 'X'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: table 'X'");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotStratifiable),
               "NotStratifiable");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  GPR_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(Result, ValueAndErrorPaths) {
  auto ok = Half(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_EQ(ok.ValueOr(-1), 2);

  auto err = Half(3);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ValueOr(-1), -1);

  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd — propagation works
}

TEST(Result, OkStatusCannotMasqueradeAsValue) {
  Result<int> r = Status::OK();  // defensive: coerced to an internal error
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(StringUtil, Basics) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), std::vector<std::string>{""});
  EXPECT_EQ(Trim("  x y\t\n"), "x y");
  EXPECT_EQ(Join({"a", "b"}, "::"), "a::b");
  EXPECT_TRUE(StartsWith("select *", "select"));
  EXPECT_FALSE(StartsWith("sel", "select"));
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
}

TEST(Rng, DeterministicAndWellDistributed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());

  Xoshiro256 c(7);
  std::set<uint64_t> seen;
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = c.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
    seen.insert(c.NextBounded(1000));
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
  EXPECT_GT(seen.size(), 990u);  // nearly all buckets hit

  Xoshiro256 d(9);
  for (int i = 0; i < 100; ++i) {
    const int64_t v = d.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, SplitMix64MatchesReference) {
  // Reference values for seed 0 (Vigna's splitmix64).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.Next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.Next(), 0x6e789e6aa1b965f4ULL);
}

}  // namespace
}  // namespace gpr
