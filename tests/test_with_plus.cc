// Tests for the with+ fixpoint executor, the PSM compiler, union-mode
// semantics, looping control, and engine-profile behaviours.
#include <gtest/gtest.h>

#include "core/plan.h"
#include "core/psm.h"
#include "core/with_plus.h"
#include "test_util.h"

namespace gpr::core {
namespace {

namespace ops = ra::ops;
using gpr::testing::MakeCatalog;
using gpr::testing::TinyGraph;
using ra::Col;
using ra::Lit;
using ra::Schema;
using ra::ValueType;

/// TC query over the catalog's E table.
WithPlusQuery TcQuery(UnionMode mode, int maxrec = 0) {
  WithPlusQuery q;
  q.rec_name = "TCx";
  q.rec_schema = Schema{{"F", ValueType::kInt64}, {"T", ValueType::kInt64}};
  q.init.push_back(
      {ProjectOp(Scan("E"),
                 {ops::As(Col("F"), "F"), ops::As(Col("T"), "T")}),
       {}});
  q.recursive.push_back(
      {ProjectOp(JoinOp(Scan("TCx"), Scan("E"), {{"T"}, {"F"}}),
                 {ops::As(Col("TCx.F"), "F"), ops::As(Col("E.T"), "T")}),
       {}});
  q.mode = mode;
  q.maxrecursion = maxrec;
  return q;
}

TEST(WithPlusValidate, RejectsMalformedQueries) {
  WithPlusQuery q;
  EXPECT_FALSE(ValidateWithPlus(q).ok());  // no name
  q.rec_name = "R";
  EXPECT_FALSE(ValidateWithPlus(q).ok());  // no schema
  q.rec_schema = Schema{{"ID", ValueType::kInt64}};
  EXPECT_FALSE(ValidateWithPlus(q).ok());  // no recursive subquery
  // An init subquery referencing R is rejected.
  q.recursive.push_back(
      {ProjectOp(Scan("R"), {ops::As(Col("ID"), "ID")}), {}});
  q.init.push_back({ProjectOp(Scan("R"), {ops::As(Col("ID"), "ID")}), {}});
  EXPECT_FALSE(ValidateWithPlus(q).ok());
  q.init.clear();
  q.init.push_back({ProjectOp(Scan("V"), {ops::As(Col("ID"), "ID")}), {}});
  EXPECT_TRUE(ValidateWithPlus(q).ok());
  // A recursive subquery NOT referencing R is rejected.
  q.recursive.push_back(
      {ProjectOp(Scan("V"), {ops::As(Col("ID"), "ID")}), {}});
  EXPECT_FALSE(ValidateWithPlus(q).ok());
  q.recursive.pop_back();
  // maxrecursion range (SQL-Server hint range).
  q.maxrecursion = 40000;
  EXPECT_FALSE(ValidateWithPlus(q).ok());
  q.maxrecursion = 0;
  // union-by-update with two recursive subqueries is ambiguous.
  q.mode = UnionMode::kUnionByUpdate;
  q.recursive.push_back(q.recursive[0]);
  EXPECT_FALSE(ValidateWithPlus(q).ok());
}

TEST(WithPlusExec, UnionDistinctReachesFixpointOnCyclicGraph) {
  auto catalog = MakeCatalog(TinyGraph());
  auto result =
      ExecuteWithPlus(TcQuery(UnionMode::kUnionDistinct), catalog,
                      OracleLike());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
  // TC of TinyGraph: cycle 1,2,3 all reach each other and themselves.
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (const auto& row : result->table.rows()) {
    pairs.insert({row[0].AsInt64(), row[1].AsInt64()});
  }
  EXPECT_TRUE(pairs.count({1, 1}));
  EXPECT_TRUE(pairs.count({0, 3}));
  EXPECT_TRUE(pairs.count({4, 5}));
  EXPECT_FALSE(pairs.count({5, 4}));
}

TEST(WithPlusExec, UnionAllNeedsMaxrecursionOnCycles) {
  auto catalog = MakeCatalog(TinyGraph());
  // On a cyclic graph, union all never converges on its own; maxrecursion
  // caps the blow-up and reports converged = false.
  auto result = ExecuteWithPlus(TcQuery(UnionMode::kUnionAll, 4), catalog,
                                OracleLike());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->converged);
  EXPECT_EQ(result->iterations, 4u);
  // Tuples accumulate (duplicates retained) — the Fig 12b effect.
  ASSERT_EQ(result->iters.size(), 4u);
  EXPECT_GT(result->iters[3].rec_rows, result->iters[0].rec_rows);
}

TEST(WithPlusExec, IterationStatsAreRecorded) {
  auto catalog = MakeCatalog(TinyGraph());
  auto result = ExecuteWithPlus(TcQuery(UnionMode::kUnionDistinct), catalog,
                                OracleLike());
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->iters.size(), 2u);
  for (const auto& iter : result->iters) {
    EXPECT_GE(iter.millis, 0.0);
  }
  EXPECT_GT(result->counters.joins, 0u);
}

TEST(WithPlusExec, TemporariesAreDroppedOnExit) {
  auto catalog = MakeCatalog(TinyGraph());
  const auto before = catalog.TableNames();
  auto result = ExecuteWithPlus(TcQuery(UnionMode::kUnionDistinct), catalog,
                                OracleLike());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(catalog.TableNames(), before);
}

TEST(WithPlusExec, CollidingRecursiveNameFails) {
  auto catalog = MakeCatalog(TinyGraph());
  WithPlusQuery q = TcQuery(UnionMode::kUnionDistinct);
  q.rec_name = "E";  // collides with the base edge table
  q.recursive[0] =
      {ProjectOp(JoinOp(RenameOp(Scan("E"), "Ex"), Scan("V"),
                        {{"T"}, {"ID"}}),
                 {ops::As(Col("Ex.F"), "F"), ops::As(Col("Ex.T"), "T")}),
       {}};
  // Make the recursive subquery reference "E" (now the rec name).
  auto result = ExecuteWithPlus(q, catalog, OracleLike());
  EXPECT_FALSE(result.ok());
}

TEST(WithPlusExec, UnionByUpdateConvergesAndUpdates) {
  // R(ID, vw): start all 0; each iteration set vw = 1 for nodes with an
  // in-edge from a vw=1 node or the seed... emulate one-step reachability
  // from node 0 via max.
  auto catalog = MakeCatalog(TinyGraph());
  WithPlusQuery q;
  q.rec_name = "Rx";
  q.rec_schema = Schema{{"ID", ValueType::kInt64}, {"vw", ValueType::kDouble}};
  q.init.push_back(
      {ProjectOp(Scan("V"),
                 {ops::As(Col("ID"), "ID"),
                  ops::As(ra::Mul(ra::Eq(Col("ID"), Lit(int64_t{0})),
                                  Lit(1.0)),
                          "vw")}),
       {}});
  q.recursive.push_back(
      {ProjectOp(
           GroupByOp(JoinOp(Scan("E"), Scan("Rx"), {{"F"}, {"ID"}}),
                     {"E.T"},
                     {ra::MaxOf(ra::Mul(Col("Rx.vw"), Col("E.ew")), "m")}),
           {ops::As(Col("T"), "ID"),
            ops::As(ra::Call("greatest", {Col("m"), Lit(0.0)}), "vw")}),
       {}});
  q.mode = UnionMode::kUnionByUpdate;
  q.update_keys = {"ID"};
  auto result = ExecuteWithPlus(q, catalog, OracleLike());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->converged);
}

TEST(WithPlusExec, AllUbuImplsGiveSameFixpointForTC) {
  // BFS-style queries converge identically under merge / full-outer /
  // update-from (drop/alter would reject partial coverage).
  std::map<std::string, std::map<int64_t, double>> results;
  for (auto impl : {UnionByUpdateImpl::kMerge,
                    UnionByUpdateImpl::kFullOuterJoin,
                    UnionByUpdateImpl::kUpdateFrom}) {
    auto catalog = MakeCatalog(TinyGraph());
    WithPlusQuery q;
    q.rec_name = "Rb";
    q.rec_schema =
        Schema{{"ID", ValueType::kInt64}, {"vw", ValueType::kDouble}};
    q.init.push_back(
        {ProjectOp(Scan("V"),
                   {ops::As(Col("ID"), "ID"),
                    ops::As(ra::Mul(ra::Eq(Col("ID"), Lit(int64_t{0})),
                                    Lit(1.0)),
                            "vw")}),
         {}});
    q.recursive.push_back(
        {ProjectOp(
             GroupByOp(JoinOp(Scan("E"), Scan("Rb"), {{"F"}, {"ID"}}),
                       {"E.T"},
                       {ra::MaxOf(ra::Mul(Col("Rb.vw"), Col("E.ew")), "m")}),
             {ops::As(Col("T"), "ID"), ops::As(Col("m"), "vw")}),
         {}});
    q.mode = UnionMode::kUnionByUpdate;
    q.update_keys = {"ID"};
    q.ubu_impl = impl;
    const EngineProfile profile = impl == UnionByUpdateImpl::kUpdateFrom
                                      ? PostgresLike()
                                      : OracleLike();
    auto result = ExecuteWithPlus(q, catalog, profile);
    ASSERT_TRUE(result.ok())
        << UnionByUpdateImplName(impl) << ": " << result.status();
    EXPECT_TRUE(result->converged);
    results[UnionByUpdateImplName(impl)] =
        gpr::testing::VectorOf(result->table);
  }
  const auto& first = results.begin()->second;
  for (const auto& [name, vec] : results) {
    EXPECT_EQ(vec, first) << name;
  }
}

TEST(WithPlusExec, StratificationGateCanBeToggled) {
  auto catalog = MakeCatalog(TinyGraph());
  WithPlusQuery q = TcQuery(UnionMode::kUnionDistinct);
  // Introduce a computed-by forward reference: rejected when the gate is
  // on, accepted (and executed, wrongly ordered defs fail at runtime)
  // otherwise.
  q.recursive[0].computed_by.push_back(
      {"Afwd", ProjectOp(Scan("Bfwd"), {ops::As(Col("F"), "F")})});
  q.recursive[0].computed_by.push_back(
      {"Bfwd", ProjectOp(Scan("TCx"), {ops::As(Col("F"), "F")})});
  auto gated = ExecuteWithPlus(q, catalog, OracleLike());
  EXPECT_FALSE(gated.ok());
  EXPECT_EQ(gated.status().code(), StatusCode::kNotStratifiable);
}

// ------------------------------------------------------------ PSM

TEST(Psm, CompileAndSketch) {
  WithPlusQuery q = TcQuery(UnionMode::kUnionDistinct, 7);
  auto proc = CompileToPsm(q);
  ASSERT_TRUE(proc.ok()) << proc.status();
  EXPECT_EQ(proc->rec_table, "TCx");
  EXPECT_EQ(proc->blocks.size(), 1u);
  EXPECT_EQ(proc->blocks[0].cond_var, "C_1");
  const std::string sketch = proc->ToSqlSketch();
  EXPECT_NE(sketch.find("create procedure F_TCx"), std::string::npos);
  EXPECT_NE(sketch.find("loop"), std::string::npos);
  EXPECT_NE(sketch.find("exit when"), std::string::npos);
  EXPECT_NE(sketch.find("iteration = 7"), std::string::npos);
}

// ------------------------------------------------- engine profiles

TEST(EngineProfile, Table1FeatureMatrix) {
  const auto oracle = OracleLike();
  const auto db2 = Db2Like();
  const auto pg = PostgresLike();
  // Row A: all three support linear recursion only.
  for (const auto& p : {oracle, db2, pg}) {
    EXPECT_TRUE(p.with_features.linear_recursion);
    EXPECT_FALSE(p.with_features.nonlinear_recursion);
    EXPECT_FALSE(p.with_features.mutual_recursion);
    EXPECT_FALSE(p.with_features.negation_in_recursion);
    EXPECT_FALSE(p.with_features.aggregates_in_recursion);
  }
  // DB2 is the only one allowing multiple recursive queries.
  EXPECT_TRUE(db2.with_features.multiple_recursive_queries);
  EXPECT_FALSE(oracle.with_features.multiple_recursive_queries);
  // PostgreSQL alone supports union across init/recursive and distinct.
  EXPECT_TRUE(pg.with_features.union_across_init_and_recursive);
  EXPECT_TRUE(pg.with_features.distinct_in_recursion);
  EXPECT_FALSE(oracle.with_features.distinct_in_recursion);
  EXPECT_FALSE(db2.with_features.distinct_in_recursion);
  // Oracle alone has cycle detection (search/cycle clauses).
  EXPECT_TRUE(oracle.with_features.cycle_detection);
  EXPECT_FALSE(pg.with_features.cycle_detection);
}

TEST(EngineProfile, JoinChoiceDependsOnStats) {
  ra::Table temp("tmp", Schema{{"a", ValueType::kInt64}});
  temp.AddRow({int64_t{1}});
  const auto pg = PostgresLike();
  // Temp table without stats: merge join (the paper's suboptimal plan).
  EXPECT_EQ(pg.ChooseJoin(temp), ops::JoinAlgorithm::kSortMerge);
  // Analyzed (base) table: hash join.
  temp.Analyze();
  EXPECT_EQ(pg.ChooseJoin(temp), ops::JoinAlgorithm::kHash);
  // Oracle hashes either way.
  EXPECT_EQ(OracleLike().ChooseJoin(temp), ops::JoinAlgorithm::kHash);
}

TEST(EngineProfile, ResultsAgreeAcrossProfilesForTC) {
  std::map<std::string, size_t> rows;
  for (const auto& profile : AllProfiles()) {
    auto catalog = MakeCatalog(TinyGraph());
    auto result = ExecuteWithPlus(TcQuery(UnionMode::kUnionDistinct),
                                  catalog, profile);
    ASSERT_TRUE(result.ok()) << profile.name << ": " << result.status();
    rows[profile.name] = result->table.NumRows();
  }
  EXPECT_EQ(rows.at("oracle-like"), rows.at("db2-like"));
  EXPECT_EQ(rows.at("oracle-like"), rows.at("postgres-like"));
}

}  // namespace
}  // namespace gpr::core
