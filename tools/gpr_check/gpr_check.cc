#include "gpr_check/gpr_check.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>

#include "util/diag_emit.h"

namespace gpr::check {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Path components of a '/'-normalized path ("src/ra/table.cc" ->
/// {"src","ra","table.cc"}). Component matching avoids substring traps
/// ("algebra/" must not count as "ra/").
std::vector<std::string> Components(const std::string& path) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : path) {
    if (c == '/') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool HasComponent(const std::string& path, const std::string& name) {
  for (const auto& c : Components(path)) {
    if (c == name) return true;
  }
  return false;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Offset of the closer matching the opener at `open`, or npos.
size_t MatchForward(const std::string& s, size_t open, char oc, char cc) {
  size_t depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == oc) {
      ++depth;
    } else if (s[i] == cc) {
      if (--depth == 0) return i;
    }
  }
  return std::string::npos;
}

/// A half-open [begin, end) offset range in the stripped text.
struct Span {
  size_t begin = 0;
  size_t end = 0;
  bool Contains(size_t offset) const {
    return offset >= begin && offset < end;
  }
};

/// One `for` loop: header span (inside the parens) and body span (inside
/// the braces, or the single statement up to ';').
struct ForLoop {
  size_t start = 0;  ///< offset of the 'f' of `for`
  Span header;
  Span body;
};

/// All `for` loops of the stripped text, by lightweight paren/brace
/// matching. Loops whose shape cannot be matched are skipped.
std::vector<ForLoop> FindForLoops(const std::string& code) {
  static const std::regex kFor(R"((^|[^\w])for\s*\()");
  std::vector<ForLoop> out;
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kFor);
       it != std::sregex_iterator(); ++it) {
    ForLoop loop;
    loop.start = it->position(0) + it->length(1);
    const size_t open = it->position(0) + it->length(0) - 1;
    const size_t close = MatchForward(code, open, '(', ')');
    if (close == std::string::npos) continue;
    loop.header = {open + 1, close};
    size_t p = close + 1;
    while (p < code.size() &&
           std::isspace(static_cast<unsigned char>(code[p]))) {
      ++p;
    }
    if (p >= code.size()) continue;
    if (code[p] == '{') {
      const size_t body_close = MatchForward(code, p, '{', '}');
      if (body_close == std::string::npos) continue;
      loop.body = {p + 1, body_close};
    } else {
      // Single-statement body: up to the terminating ';'. Good enough for
      // the statement shapes the rules care about (calls, casts).
      const size_t semi = code.find(';', p);
      if (semi == std::string::npos) continue;
      loop.body = {p, semi + 1};
    }
    out.push_back(loop);
  }
  return out;
}

/// Spans of every call `name(...)` in the stripped text.
std::vector<Span> CallSpans(const std::string& code, const std::string& name) {
  std::vector<Span> out;
  size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    if (pos > 0 && IsIdentChar(code[pos - 1])) {
      pos += name.size();
      continue;
    }
    size_t open = pos + name.size();
    while (open < code.size() &&
           std::isspace(static_cast<unsigned char>(code[open]))) {
      ++open;
    }
    if (open < code.size() && code[open] == '(') {
      const size_t close = MatchForward(code, open, '(', ')');
      if (close != std::string::npos) out.push_back({pos, close + 1});
    }
    pos += name.size();
  }
  return out;
}

void Add(const SourceFile& src, std::vector<Finding>* out, const char* code,
         size_t offset, std::string message, std::string hint) {
  const size_t line = src.LineOf(offset);
  if (src.Suppressed(code, line)) return;
  out->push_back(Finding{code, src.path, line, std::move(message),
                         std::move(hint)});
}

// --- GPR-C400 ------------------------------------------------------------
// Every mutable Table entry point bumps the content version exactly once.
// The plan cache keys artifacts on (name, version); a missing bump serves
// stale state, a double bump silently kills valid entries.
void CheckC400(const SourceFile& src, std::vector<Finding>* out) {
  if (!EndsWith(src.path, "ra/table.cc") && src.path != "table.cc") return;
  static const std::regex kMethod(R"(Table::(\w+)\s*\()");
  static const std::regex kMutation(
      R"(rows_\s*\.\s*(push_back|emplace_back|clear|resize|erase|pop_back|assign|swap|insert)|sort\s*\(\s*rows_|rows_\s*=[^=])");
  static const std::regex kBump(R"(BumpVersion\s*\(|version_\s*=\s*NextTableVersion)");
  const std::string& code = src.code;
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kMethod);
       it != std::sregex_iterator(); ++it) {
    const size_t open = code.find('(', it->position(0));
    const size_t close = MatchForward(code, open, '(', ')');
    if (close == std::string::npos) continue;
    // Definition (not a declaration/call): a '{' before the next ';'.
    const size_t brace = code.find_first_of("{;", close + 1);
    if (brace == std::string::npos || code[brace] != '{') continue;
    const size_t body_close = MatchForward(code, brace, '{', '}');
    if (body_close == std::string::npos) continue;
    const std::string body = code.substr(brace + 1, body_close - brace - 1);
    if (!std::regex_search(body, kMutation)) continue;
    const size_t bumps = std::distance(
        std::sregex_iterator(body.begin(), body.end(), kBump),
        std::sregex_iterator());
    if (bumps != 1) {
      Add(src, out, "GPR-C400", it->position(0),
          "mutable Table entry point 'Table::" + it->str(1) + "' bumps the "
          "content version " + std::to_string(bumps) + " times, not exactly "
          "once — plan-cache validity depends on one bump per mutation",
          bumps == 0 ? "call BumpVersion() once before returning"
                     : "bump once at the entry point; use ResetIndexes()-style "
                       "no-bump helpers internally");
    }
  }
}

// --- GPR-C401 ------------------------------------------------------------
// Long row loops in the ra operators must stay cancellable: every loop
// over table tuples either polls the governor, runs inside RunMorsels
// (which polls per ~8192-row morsel), or is nested in a polling loop.
void CheckC401(const SourceFile& src, std::vector<Finding>* out) {
  if (!HasComponent(src.path, "ra") || !EndsWith(src.path, ".cc")) return;
  const std::string& code = src.code;
  const std::vector<ForLoop> loops = FindForLoops(code);
  const std::vector<Span> morsel_regions = CallSpans(code, "RunMorsels");

  auto is_row_loop = [&](const ForLoop& l) {
    const std::string header =
        code.substr(l.header.begin, l.header.end - l.header.begin);
    if (header.find(".rows()") != std::string::npos ||
        header.find("->rows()") != std::string::npos) {
      return true;
    }
    const std::string body =
        code.substr(l.body.begin, l.body.end - l.body.begin);
    return body.find(".row(") != std::string::npos ||
           body.find("->row(") != std::string::npos;
  };
  auto body_polls = [&](const ForLoop& l) {
    return code.substr(l.body.begin, l.body.end - l.body.begin)
               .find("Poll") != std::string::npos;
  };

  for (const ForLoop& loop : loops) {
    if (!is_row_loop(loop)) continue;
    bool exempt = body_polls(loop);
    for (const Span& region : morsel_regions) {
      exempt = exempt || region.Contains(loop.start);
    }
    for (const ForLoop& outer : loops) {
      // A polling ancestor covers its nested loops.
      if (outer.body.Contains(loop.start) && body_polls(outer)) {
        exempt = true;
      }
    }
    if (!exempt) {
      Add(src, out, "GPR-C401", loop.start,
          "row loop over tuples without a governor poll — deadlines and "
          "cancellation cannot interrupt it",
          "call PollGovernor(ctx, i, site) in the loop, or run it under "
          "RunMorsels (per-morsel polls)");
    }
  }
}

// --- GPR-C402 ------------------------------------------------------------
// Raw standard-library synchronization in src/ defeats the Clang
// thread-safety analysis: only gpr::Mutex carries the capability
// attribute, so GPR_GUARDED_BY contracts on members are unenforceable
// through std::mutex.
void CheckC402(const SourceFile& src, std::vector<Finding>* out) {
  if (!HasComponent(src.path, "src")) return;
  if (EndsWith(src.path, "util/mutex.h") ||
      EndsWith(src.path, "util/thread_annotations.h")) {
    return;  // the wrapper itself
  }
  static const std::regex kRawSync(
      R"(std\s*::\s*(mutex|timed_mutex|recursive_mutex|shared_mutex|lock_guard|unique_lock|scoped_lock|condition_variable_any|condition_variable)\b)");
  const std::string& code = src.code;
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kRawSync);
       it != std::sregex_iterator(); ++it) {
    const size_t pos = it->position(0);
    if (pos > 0 && IsIdentChar(code[pos - 1])) continue;
    Add(src, out, "GPR-C402",
        pos, "raw std::" + it->str(1) + " outside util/mutex.h — the "
        "thread-safety analysis cannot check GPR_GUARDED_BY through it",
        "use gpr::Mutex / gpr::MutexLock / gpr::CondVar from util/mutex.h");
  }
}

// --- GPR-C403 ------------------------------------------------------------
// Status/Result are [[nodiscard]], so the only way to drop one is an
// explicit (void) cast; every such cast must say why, or a swallowed
// failure looks identical to a considered one.
void CheckC403(const SourceFile& src, std::vector<Finding>* out) {
  static const std::regex kDiscard(
      R"(\(\s*void\s*\)\s*[A-Za-z_][\w:.>-]*\s*\()");
  const std::string& code = src.code;
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kDiscard);
       it != std::sregex_iterator(); ++it) {
    const size_t line = src.LineOf(it->position(0));
    const bool justified =
        src.RawLine(line).find("//") != std::string::npos ||
        src.RawLine(line == 0 ? 0 : line - 1).find("//") !=
            std::string::npos;
    if (!justified) {
      Add(src, out, "GPR-C403", it->position(0),
          "(void)-discarded call result without a justification comment — "
          "Status/Result discards must say why the failure is ignorable",
          "add a // comment on this or the preceding line, or handle the "
          "status");
    }
  }
}

// --- GPR-C404 ------------------------------------------------------------
// Temp-table cleanup belongs to ra::TempTableScope: loop-dropping tables
// (or blanket DropAllTemporary calls) runs only on the paths the author
// remembered, while the RAII scope covers success, errors, and governed
// aborts alike.
void CheckC404(const SourceFile& src, std::vector<Finding>* out) {
  if (EndsWith(src.path, "ra/catalog.h") ||
      EndsWith(src.path, "ra/catalog.cc")) {
    return;  // the owning implementation
  }
  const std::string& code = src.code;
  const std::vector<ForLoop> loops = FindForLoops(code);
  for (const Span& call : CallSpans(code, "DropTable")) {
    for (const ForLoop& loop : loops) {
      if (loop.body.Contains(call.begin)) {
        Add(src, out, "GPR-C404", call.begin,
            "manual temp-table cleanup loop — error and governed-abort "
            "paths will leak catalog entries",
            "track the tables in a ra::TempTableScope and let its "
            "destructor drop them");
        break;
      }
    }
  }
  for (const Span& call : CallSpans(code, "DropAllTemporary")) {
    Add(src, out, "GPR-C404", call.begin,
        "blanket DropAllTemporary call — drops temp tables other "
        "executions may still own",
        "track this execution's tables in a ra::TempTableScope instead");
  }
}

// --- GPR-C405 ------------------------------------------------------------
// Operator and engine code must be deterministic and reproducible:
// rand()/srand() and wall-clock reads belong behind util/rng.h and
// util/timer.h, where seeds and clocks are injectable.
void CheckC405(const SourceFile& src, std::vector<Finding>* out) {
  if (!HasComponent(src.path, "src")) return;
  if (!HasComponent(src.path, "ra") && !HasComponent(src.path, "core") &&
      !HasComponent(src.path, "exec") && !HasComponent(src.path, "algos")) {
    return;
  }
  static const std::regex kNonDet(
      R"((^|[^\w:.>])(rand\s*\(|srand\s*\(|time\s*\(\s*(NULL|nullptr)\s*\)|clock\s*\(\s*\)))");
  const std::string& code = src.code;
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kNonDet);
       it != std::sregex_iterator(); ++it) {
    Add(src, out, "GPR-C405", it->position(2),
        "non-deterministic libc call in engine code — results must be "
        "reproducible under a fixed seed",
        "use the deterministic PRNG (util/rng.h) or WallTimer "
        "(util/timer.h)");
  }
}

// --- GPR-C406 ------------------------------------------------------------
// Every BENCH_*.json emitter must carry the counters section (cache,
// facts) — CI trend tooling joins the artifacts on those keys, and a
// hand-rolled emitter that drops them silently breaks the perf history.
void CheckC406(const SourceFile& src, std::vector<Finding>* out) {
  if (!HasComponent(src.path, "bench")) return;
  static const std::regex kArtifact(R"("BENCH_\w*\.json")");
  std::smatch m;
  if (!std::regex_search(src.raw, m, kArtifact)) return;
  if (src.raw.find("BenchJsonWriter") != std::string::npos ||
      src.raw.find("cache_hits") != std::string::npos) {
    return;
  }
  Add(src, out, "GPR-C406", m.position(0),
      "bench JSON artifact emitted without the counters section",
      "emit through bench::BenchJsonWriter (bench_common.h), whose record "
      "schema carries the cache/facts counters");
}

// --- GPR-C407 ------------------------------------------------------------
// Public headers use #pragma once, uniformly — a missing or ifndef-style
// guard is a double-include bug (or an inconsistency) waiting to happen.
void CheckC407(const SourceFile& src, std::vector<Finding>* out) {
  if (!EndsWith(src.path, ".h")) return;
  const std::string& code = src.code;
  const size_t first =
      code.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return;  // empty header: nothing to guard
  static const std::regex kPragmaOnce(R"(^#\s*pragma\s+once\b)");
  const size_t line = src.LineOf(first);
  const size_t line_start = src.line_starts[line - 1];
  const size_t line_end = code.find('\n', line_start);
  const std::string first_line = code.substr(
      line_start, (line_end == std::string::npos ? code.size() : line_end) -
                      line_start);
  if (!std::regex_search(first_line, kPragmaOnce)) {
    Add(src, out, "GPR-C407", first,
        "header does not open with #pragma once",
        "make #pragma once the first non-comment line (repo convention; "
        "no #ifndef guards)");
  }
}

// --- GPR-C408 ------------------------------------------------------------
// Table files on disk must never tear: every table_io write goes through
// AtomicWriteFile (temp file + fsync + rename), so a crash or injected
// fault leaves either the old complete file or the new complete one. A
// bare ofstream/fopen write site silently reintroduces torn files.
void CheckC408(const SourceFile& src, std::vector<Finding>* out) {
  if (src.path.find("table_io") == std::string::npos) return;
  static const std::regex kRawWrite(
      R"(std\s*::\s*(ofstream|fstream)\b|\bfopen\s*\()");
  const std::string& code = src.code;
  for (auto it = std::sregex_iterator(code.begin(), code.end(), kRawWrite);
       it != std::sregex_iterator(); ++it) {
    const size_t pos = it->position(0);
    if (pos > 0 && IsIdentChar(code[pos - 1])) continue;
    Add(src, out, "GPR-C408", pos,
        "raw file-write primitive in table_io — a fault mid-write leaves a "
        "torn table file",
        "route writes through AtomicWriteFile (temp file + fsync + rename)");
  }
}

// --- GPR-C409 ------------------------------------------------------------
// Cached CSR layouts must be keyed on the source table's content version:
// a plan-cache Lookup/Insert of a CsrMatrix whose argument list carries no
// version is a stale-kernel-read bug — the entry would survive table
// mutation and the SpMV kernel would read dead edges (ra/csr.cc, CsrFor).
void CheckC409(const SourceFile& src, std::vector<Finding>* out) {
  const std::string& code = src.code;
  if (code.find("CsrMatrix") == std::string::npos) return;
  for (const char* fn : {"Lookup", "Insert"}) {
    static const std::regex kVersion(R"(\bversion\b|\bmversion\b)");
    size_t pos = 0;
    while ((pos = code.find(fn, pos)) != std::string::npos) {
      if (pos > 0 && IsIdentChar(code[pos - 1])) {
        pos += std::strlen(fn);
        continue;
      }
      size_t p = pos + std::strlen(fn);
      // Only the templated cache calls: Lookup<...>(...) / Insert<...>(...).
      if (p >= code.size() || code[p] != '<') {
        pos = p;
        continue;
      }
      const size_t close_tpl = code.find('>', p);
      if (close_tpl == std::string::npos) break;
      const std::string tpl_arg = code.substr(p + 1, close_tpl - p - 1);
      if (tpl_arg.find("CsrMatrix") == std::string::npos) {
        pos = close_tpl;
        continue;
      }
      size_t open = close_tpl + 1;
      while (open < code.size() &&
             std::isspace(static_cast<unsigned char>(code[open]))) {
        ++open;
      }
      if (open >= code.size() || code[open] != '(') {
        pos = close_tpl;
        continue;
      }
      const size_t close = MatchForward(code, open, '(', ')');
      if (close == std::string::npos) break;
      const std::string args = code.substr(open + 1, close - open - 1);
      if (!std::regex_search(args, kVersion)) {
        Add(src, out, "GPR-C409", pos,
            std::string("cache ") + fn +
                "<CsrMatrix> without a table content version in the key — "
                "the CSR layout would survive table mutation",
            "key the entry on the source table's version() "
            "(ra/csr.cc CsrFor is the reference call shape)");
      }
      pos = close;
    }
  }
}

// --- GPR-C410 ------------------------------------------------------------
// Columnar stores grow through the batch append API and are sealed by
// FinishRows(): a translation unit that takes mutable columns via
// mutable_column() but never calls FinishRows() can leave the per-column
// value buffers and null bitmaps at unequal lengths — MaterializeRow /
// AdoptColumns would then read (or CHECK on) a torn store (ra/column.h).
void CheckC410(const SourceFile& src, std::vector<Finding>* out) {
  // The store's own implementation legitimately touches columns directly.
  if (src.path.find("ra/column") != std::string::npos) return;
  const std::string& code = src.code;
  if (code.find("FinishRows") != std::string::npos) return;
  size_t pos = 0;
  while ((pos = code.find("mutable_column", pos)) != std::string::npos) {
    if (pos > 0 && IsIdentChar(code[pos - 1])) {
      pos += std::strlen("mutable_column");
      continue;
    }
    Add(src, out, "GPR-C410", pos,
        "ColumnStore grown via mutable_column() without a FinishRows() "
        "seal — per-column buffers can end up at unequal lengths",
        "append per batch, then call FinishRows() before the store is "
        "read or adopted (ra/vectorized.cc TryProject is the reference "
        "shape)");
    pos += std::strlen("mutable_column");
  }
}

}  // namespace

size_t SourceFile::LineOf(size_t offset) const {
  auto it = std::upper_bound(line_starts.begin(), line_starts.end(), offset);
  return static_cast<size_t>(it - line_starts.begin());
}

std::string SourceFile::RawLine(size_t line) const {
  if (line == 0 || line > line_starts.size()) return "";
  const size_t begin = line_starts[line - 1];
  const size_t end = raw.find('\n', begin);
  return raw.substr(begin,
                    (end == std::string::npos ? raw.size() : end) - begin);
}

bool SourceFile::Suppressed(const std::string& code_id, size_t line) const {
  for (size_t l : {line, line == 0 ? size_t{0} : line - 1}) {
    const std::string text = RawLine(l);
    const size_t pos = text.find("gpr_check(disable:");
    if (pos == std::string::npos) continue;
    const size_t close = text.find(')', pos);
    if (close == std::string::npos) continue;
    if (text.substr(pos, close - pos).find(code_id) != std::string::npos) {
      return true;
    }
  }
  return false;
}

SourceFile PrepareSource(std::string path, std::string text) {
  SourceFile src;
  std::replace(path.begin(), path.end(), '\\', '/');
  src.path = std::move(path);
  src.raw = std::move(text);
  src.code = src.raw;

  // Blank comment and literal contents to spaces, preserving newlines so
  // offsets/lines in `code` match `raw`.
  std::string& c = src.code;
  enum class St { kNormal, kLine, kBlock, kString, kChar, kRaw };
  St st = St::kNormal;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (size_t i = 0; i < c.size(); ++i) {
    switch (st) {
      case St::kNormal:
        if (c[i] == '/' && i + 1 < c.size() && c[i + 1] == '/') {
          st = St::kLine;
          c[i] = c[i + 1] = ' ';
          ++i;
        } else if (c[i] == '/' && i + 1 < c.size() && c[i + 1] == '*') {
          st = St::kBlock;
          c[i] = c[i + 1] = ' ';
          ++i;
        } else if (c[i] == '"' && i > 0 && c[i - 1] == 'R') {
          // Raw string: collect the delimiter up to '('.
          raw_delim.clear();
          size_t j = i + 1;
          while (j < c.size() && c[j] != '(') raw_delim += c[j++];
          st = St::kRaw;
        } else if (c[i] == '"') {
          st = St::kString;
        } else if (c[i] == '\'' && !(i > 0 && IsIdentChar(c[i - 1]))) {
          // Ident-adjacent ' is a digit separator (1'000), not a char.
          st = St::kChar;
        }
        break;
      case St::kLine:
        if (c[i] == '\n') {
          st = St::kNormal;
        } else {
          c[i] = ' ';
        }
        break;
      case St::kBlock:
        if (c[i] == '*' && i + 1 < c.size() && c[i + 1] == '/') {
          st = St::kNormal;
          c[i] = c[i + 1] = ' ';
          ++i;
        } else if (c[i] != '\n') {
          c[i] = ' ';
        }
        break;
      case St::kString:
        if (c[i] == '\\' && i + 1 < c.size()) {
          c[i] = c[i + 1] = ' ';
          ++i;
        } else if (c[i] == '"') {
          st = St::kNormal;
        } else if (c[i] != '\n') {
          c[i] = ' ';
        }
        break;
      case St::kChar:
        if (c[i] == '\\' && i + 1 < c.size()) {
          c[i] = c[i + 1] = ' ';
          ++i;
        } else if (c[i] == '\'') {
          st = St::kNormal;
        } else {
          c[i] = ' ';
        }
        break;
      case St::kRaw: {
        const std::string closer = ")" + raw_delim + "\"";
        if (c.compare(i, closer.size(), closer) == 0) {
          st = St::kNormal;
          i += closer.size() - 1;
        } else if (c[i] != '\n') {
          c[i] = ' ';
        }
        break;
      }
    }
  }

  src.line_starts.push_back(0);
  for (size_t i = 0; i < src.raw.size(); ++i) {
    if (src.raw[i] == '\n' && i + 1 < src.raw.size()) {
      src.line_starts.push_back(i + 1);
    }
  }
  return src;
}

void CheckSource(const SourceFile& src, std::vector<Finding>* out) {
  CheckC400(src, out);
  CheckC401(src, out);
  CheckC402(src, out);
  CheckC403(src, out);
  CheckC404(src, out);
  CheckC405(src, out);
  CheckC406(src, out);
  CheckC407(src, out);
  CheckC408(src, out);
  CheckC409(src, out);
  CheckC410(src, out);
}

std::vector<Finding> CheckSourceText(const std::string& path,
                                     const std::string& text) {
  std::vector<Finding> out;
  CheckSource(PrepareSource(path, text), &out);
  return out;
}

std::string Finding::ToString() const {
  std::string out =
      file + ":" + std::to_string(line) + ": error " + code + ": " + message;
  if (!hint.empty()) out += "\n  fix: " + hint;
  return out;
}

std::string Finding::ToJson() const {
  std::string out = "{\"file\": \"" + JsonEscape(file) +
                    "\", \"line\": " + std::to_string(line) +
                    ", \"code\": \"" + JsonEscape(code) +
                    "\", \"severity\": \"error\", \"message\": \"" +
                    JsonEscape(message) + "\"";
  if (!hint.empty()) out += ", \"hint\": \"" + JsonEscape(hint) + "\"";
  out += "}";
  return out;
}

Result<std::vector<Finding>> CheckPaths(
    const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& p : paths) {
    const fs::path root(p);
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (!it->is_regular_file(ec)) continue;
        const std::string ext = it->path().extension().string();
        if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
          files.push_back(it->path().generic_string());
        }
      }
      if (ec) {
        return Status(StatusCode::kIoError,
                      "cannot walk '" + p + "': " + ec.message());
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root.generic_string());
    } else {
      return Status(StatusCode::kNotFound, "no such file or directory: " + p);
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const auto& file : files) {
    std::ifstream in(file);
    if (!in) {
      return Status(StatusCode::kIoError, "cannot open '" + file + "'");
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    CheckSource(PrepareSource(file, buf.str()), &findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.code < b.code;
            });
  return findings;
}

std::string FindingsToJson(const std::vector<Finding>& findings) {
  JsonArrayEmitter emitter;
  for (const Finding& f : findings) emitter.Add(f.ToJson());
  return emitter.Render();
}

}  // namespace gpr::check
