// gpr_check — the repo-invariant linter (tools/gpr_check).
//
// A standalone token-lite analyzer over the C++ sources that enforces the
// engine conventions no compiler checks: version-bump discipline in the
// Table mutators, governor polls in row loops, the gpr::Mutex lock
// wrapper, justified Status discards, RAII temp-table cleanup,
// deterministic operator code, bench-artifact schema, and header hygiene.
// Each rule has a stable GPR-C4xx code; docs/static-analysis.md is the
// catalog.
//
// The scan is deliberately not a full parser: sources are stripped of
// comments and string/character literals (preserving line structure) and
// rules pattern-match with lightweight brace/paren tracking. That keeps
// the tool dependency-free, fast enough to run on every CI push, and —
// unlike a clang plugin — trivially testable against in-memory fixture
// snippets (tests/test_gpr_check.cc).
//
// Intentional exceptions are annotated at the site, never silently
// skipped:   // gpr_check(disable: GPR-C402): <reason>
// on the offending line or the line above suppresses that code there.
#pragma once

#include <string>
#include <vector>

#include "util/status.h"

namespace gpr::check {

/// One linter finding, located by file and 1-based line.
struct Finding {
  std::string code;  ///< stable identifier, e.g. "GPR-C402"
  std::string file;  ///< path as scanned ('/'-separated)
  size_t line = 0;   ///< 1-based
  std::string message;
  std::string hint;  ///< optional fix-it suggestion

  /// "file:line: error GPR-C402: message\n  fix: hint".
  std::string ToString() const;
  /// One flat JSON object (the ANALYSIS_check.json entry shape).
  std::string ToJson() const;
};

/// A source file prepared for rule scanning.
struct SourceFile {
  std::string path;  ///< normalized to '/' separators
  std::string raw;   ///< original text (string literals, comments intact)
  /// `raw` with comments and string/char literal *contents* blanked to
  /// spaces — newlines kept, so offsets and line numbers match `raw`.
  std::string code;
  std::vector<size_t> line_starts;  ///< offset of each line in raw/code

  /// 1-based line containing `offset`.
  size_t LineOf(size_t offset) const;
  /// Raw text of 1-based line `line` ("" when out of range).
  std::string RawLine(size_t line) const;
  /// True when `line` or the line above carries
  /// "gpr_check(disable: <code>)".
  bool Suppressed(const std::string& code_id, size_t line) const;
};

/// Normalizes separators, strips comments/literals, indexes lines.
SourceFile PrepareSource(std::string path, std::string text);

/// Runs every rule applicable to `src.path` and appends findings.
void CheckSource(const SourceFile& src, std::vector<Finding>* out);

/// PrepareSource + CheckSource over an in-memory snippet (fixture tests).
std::vector<Finding> CheckSourceText(const std::string& path,
                                     const std::string& text);

/// Scans the given files and/or directories (recursively; .h/.cc/.cpp)
/// and returns all findings sorted by (file, line, code). Fails on a path
/// that does not exist or cannot be read.
Result<std::vector<Finding>> CheckPaths(const std::vector<std::string>& paths);

/// Renders findings as the ANALYSIS_check.json array.
std::string FindingsToJson(const std::vector<Finding>& findings);

}  // namespace gpr::check
