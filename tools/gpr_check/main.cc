// gpr_check — repo-invariant linter CLI.
//
//   gpr_check [--json=PATH] [--quiet] <file-or-dir> ...
//
// Scans the given C++ sources (.h/.cc/.cpp, directories walked
// recursively) for violations of the engine conventions, printing one
// diagnostic per finding and optionally writing the machine-readable
// ANALYSIS_check.json artifact. Exit status: 0 clean, 1 findings,
// 2 usage/IO problems. See docs/static-analysis.md for the GPR-C4xx
// catalog and the suppression syntax.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "gpr_check/gpr_check.h"
#include "util/diag_emit.h"

int main(int argc, char** argv) {
  std::string json_path;
  bool quiet = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: gpr_check [--json=PATH] [--quiet] <file-or-dir> ...\n"
          "lints C++ sources against the repo invariants (GPR-C4xx; see\n"
          "docs/static-analysis.md). --json writes the findings as a JSON\n"
          "array (the ANALYSIS_check.json CI artifact); --quiet suppresses\n"
          "per-finding text. exit: 0 clean, 1 findings, 2 usage/IO.\n");
      return 0;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
      return 2;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "gpr_check: no paths given (try --help)\n");
    return 2;
  }

  auto findings = gpr::check::CheckPaths(paths);
  if (!findings.ok()) {
    std::fprintf(stderr, "gpr_check: %s\n",
                 findings.status().message().c_str());
    return 2;
  }
  if (!quiet) {
    for (const auto& f : *findings) {
      std::printf("%s\n", f.ToString().c_str());
    }
  }
  if (!json_path.empty()) {
    gpr::JsonArrayEmitter emitter;
    for (const auto& f : *findings) emitter.Add(f.ToJson());
    if (!emitter.WriteFile(json_path)) {
      std::fprintf(stderr, "gpr_check: cannot write '%s'\n",
                   json_path.c_str());
      return 2;
    }
  }
  std::printf("gpr_check: %zu finding(s)\n", findings->size());
  return findings->empty() ? 0 : 1;
}
